#include "core/codesign_layer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "optics/perturbation.hpp"

namespace lightridge {

CodesignLayer::CodesignLayer(std::shared_ptr<const Propagator> propagator,
                             DeviceLut lut, Real tau, Real gamma, Rng *rng)
    : propagator_(std::move(propagator)), lut_(std::move(lut)), tau_(tau),
      gamma_(gamma), rng_(rng)
{
    if (lut_.size() == 0)
        throw std::invalid_argument("CodesignLayer: empty device LUT");
    if (tau_ <= 0)
        throw std::invalid_argument("CodesignLayer: tau must be positive");
    const std::size_t n = propagator_->config().grid.n;
    logits_.assign(n * n * lut_.size(), 0.0);
    logits_grad_.assign(logits_.size(), 0.0);
}

// The published table is immutable, so sharing the pointer is safe; the
// mutex is per-instance and starts fresh. The rng_ pointer is copied
// as-is; parallel trainers rewire replicas via setRng(). Initializing
// in the member list (via publishedModulation(), which locks the source
// instance) keeps the constructor free of guarded-member writes.
CodesignLayer::CodesignLayer(const CodesignLayer &other)
    : propagator_(other.propagator_), lut_(other.lut_), tau_(other.tau_),
      gamma_(other.gamma_), rng_(other.rng_), logits_(other.logits_),
      logits_grad_(other.logits_grad_),
      infer_modulation_(other.publishedModulation()),
      cached_probs_(other.cached_probs_),
      cached_diffracted_(other.cached_diffracted_),
      cached_modulation_(other.cached_modulation_)
{}

std::shared_ptr<const CodesignLayer::InferModulation>
CodesignLayer::publishedModulation() const
{
    MutexLock lock(infer_cache_mutex_);
    return infer_modulation_;
}

std::size_t
CodesignLayer::sideLength() const
{
    return propagator_->config().grid.n;
}

void
CodesignLayer::unitSoftmax(std::size_t i, bool with_noise, Real *out)
{
    const std::size_t k = lut_.size();
    const Real *l = logits_.data() + i * k;
    Real best = -1e300;
    for (std::size_t j = 0; j < k; ++j) {
        Real v = l[j];
        if (with_noise && rng_ != nullptr)
            v += rng_->gumbel();
        out[j] = v / tau_;
        best = std::max(best, out[j]);
    }
    Real total = 0;
    for (std::size_t j = 0; j < k; ++j) {
        out[j] = std::exp(out[j] - best);
        total += out[j];
    }
    for (std::size_t j = 0; j < k; ++j)
        out[j] /= total;
}

Field
CodesignLayer::forward(const Field &in, bool training)
{
    Field u = in;
    forwardInPlace(u, training, PropagationWorkspace::threadLocal());
    return u;
}

Field
CodesignLayer::infer(const Field &in) const
{
    Field u = in;
    inferInPlace(u, PropagationWorkspace::threadLocal());
    return u;
}

void
CodesignLayer::forwardInPlace(Field &u, bool training,
                              PropagationWorkspace &workspace)
{
    if (!training) {
        inferInPlace(u, workspace);
        return;
    }

    const std::size_t n = sideLength();
    const std::size_t k = lut_.size();
    const LayerPerturbation *pert = perturb_;
    propagator_->forwardInto(u, cached_diffracted_, workspace,
                             pert ? &pert->hop : nullptr);
    ensureFieldShape(cached_modulation_, n, n);

    cached_probs_.resize(n * n * k);
    for (std::size_t i = 0; i < n * n; ++i) {
        Real *p = cached_probs_.data() + i * k;
        unitSoftmax(i, /*with_noise=*/true, p);
        Complex m{0, 0};
        for (std::size_t j = 0; j < k; ++j)
            m += p[j] * lut_.levels[j];
        cached_modulation_[i] = m;
    }

    ensureFieldShape(u, n, n);
    if (pert && pert->has_noise) {
        for (std::size_t i = 0; i < u.size(); ++i)
            u[i] = gamma_ * cached_diffracted_[i] * cached_modulation_[i] *
                   pert->noise[i];
        return;
    }
    for (std::size_t i = 0; i < u.size(); ++i)
        u[i] = gamma_ * cached_diffracted_[i] * cached_modulation_[i];
}

std::shared_ptr<const CodesignLayer::InferModulation>
CodesignLayer::inferModulation() const
{
    MutexLock lock(infer_cache_mutex_);
    if (infer_modulation_ && infer_modulation_->logits == logits_)
        return infer_modulation_;
    const std::size_t n = sideLength();
    const std::size_t k = lut_.size();
    auto fresh = std::make_shared<InferModulation>();
    fresh->table = Field(n, n);
    // Deployment: exact argmax device state per unit.
    for (std::size_t i = 0; i < n * n; ++i) {
        const Real *l = logits_.data() + i * k;
        std::size_t best = std::max_element(l, l + k) - l;
        fresh->table[i] = lut_.levels[best];
    }
    fresh->logits = logits_;
    infer_modulation_ = fresh;
    return fresh;
}

void
CodesignLayer::inferInPlace(Field &u, PropagationWorkspace &workspace) const
{
    std::shared_ptr<const InferModulation> mod = inferModulation();
    const LayerPerturbation *pert = perturb_;
    propagator_->forwardInto(u, u, workspace, pert ? &pert->hop : nullptr);
    const Field &table = mod->table;
    if (pert && pert->has_noise) {
        for (std::size_t i = 0; i < u.size(); ++i)
            u[i] = gamma_ * u[i] * table[i] * pert->noise[i];
        return;
    }
    for (std::size_t i = 0; i < u.size(); ++i)
        u[i] = gamma_ * u[i] * table[i];
}

LayerPtr
CodesignLayer::clone() const
{
    // The rng_ pointer is copied as-is; parallel trainers rewire each
    // replica to its own noise source via setRng().
    return std::make_unique<CodesignLayer>(*this);
}

Field
CodesignLayer::backward(const Field &grad_out)
{
    Field g = grad_out;
    backwardInPlace(g, PropagationWorkspace::threadLocal());
    return g;
}

void
CodesignLayer::backwardInPlace(Field &g, PropagationWorkspace &workspace)
{
    const std::size_t n = sideLength();
    const std::size_t k = lut_.size();
    if (cached_probs_.size() != n * n * k)
        throw std::logic_error("CodesignLayer::backward before forward");

    const LayerPerturbation *pert = perturb_;
    const bool noisy = pert && pert->has_noise;
    std::vector<Real> dldp(k);
    for (std::size_t i = 0; i < n * n; ++i) {
        // dL/dp_j = Re(conj(G_out) * gamma * U_diff * e^{j eps} * m_j)
        Complex base = gamma_ * cached_diffracted_[i];
        if (noisy)
            base *= pert->noise[i];
        Complex gc = std::conj(g[i]);
        Real inner = 0;
        const Real *p = cached_probs_.data() + i * k;
        for (std::size_t j = 0; j < k; ++j) {
            dldp[j] = std::real(gc * base * lut_.levels[j]);
            inner += p[j] * dldp[j];
        }
        // Softmax Jacobian with the 1/tau factor of the relaxation.
        Real *lg = logits_grad_.data() + i * k;
        for (std::size_t j = 0; j < k; ++j)
            lg[j] += p[j] * (dldp[j] - inner) / tau_;
    }

    if (noisy) {
        for (std::size_t i = 0; i < g.size(); ++i)
            g[i] = g[i] * std::conj(gamma_ * cached_modulation_[i]) *
                   pert->noise_conj[i];
    } else {
        for (std::size_t i = 0; i < g.size(); ++i)
            g[i] = g[i] * std::conj(gamma_ * cached_modulation_[i]);
    }
    propagator_->adjointInto(g, g, workspace, pert ? &pert->hop : nullptr);
}

std::vector<ParamView>
CodesignLayer::params()
{
    return {ParamView{"logits", &logits_, &logits_grad_}};
}

std::vector<std::size_t>
CodesignLayer::levelIndices() const
{
    const std::size_t n = sideLength();
    const std::size_t k = lut_.size();
    std::vector<std::size_t> out(n * n);
    for (std::size_t i = 0; i < n * n; ++i) {
        const Real *l = logits_.data() + i * k;
        out[i] = std::max_element(l, l + k) - l;
    }
    return out;
}

void
CodesignLayer::initFromPhase(const RealMap &phase, Real confidence)
{
    const std::size_t n = sideLength();
    const std::size_t k = lut_.size();
    if (phase.size() != n * n)
        throw std::invalid_argument("initFromPhase: shape mismatch");
    for (std::size_t i = 0; i < n * n; ++i) {
        std::size_t best = lut_.nearestPhase(phase[i]);
        Real *l = logits_.data() + i * k;
        std::fill(l, l + k, Real(0));
        l[best] = confidence;
    }
}

Json
CodesignLayer::toJson() const
{
    Json j;
    j["kind"] = Json(kind());
    j["gamma"] = Json(gamma_);
    j["tau"] = Json(tau_);
    Json lut;
    for (const Complex &m : lut_.levels) {
        Json entry;
        entry.push(Json(m.real()));
        entry.push(Json(m.imag()));
        lut.push(std::move(entry));
    }
    j["lut"] = std::move(lut);
    Json logits;
    for (Real v : logits_)
        logits.push(Json(v));
    j["logits"] = std::move(logits);
    return j;
}

std::unique_ptr<CodesignLayer>
CodesignLayer::fromJson(const Json &j,
                        std::shared_ptr<const Propagator> propagator)
{
    DeviceLut lut;
    for (const Json &entry : j.at("lut").asArray()) {
        const auto &pair = entry.asArray();
        lut.levels.emplace_back(pair[0].asNumber(), pair[1].asNumber());
    }
    auto layer = std::make_unique<CodesignLayer>(
        std::move(propagator), std::move(lut), j.numberOr("tau", 1.0),
        j.numberOr("gamma", 1.0));
    const auto &logits = j.at("logits").asArray();
    if (logits.size() != layer->logits_.size())
        throw JsonError("codesign layer logits size mismatch");
    for (std::size_t i = 0; i < logits.size(); ++i)
        layer->logits_[i] = logits[i].asNumber();
    return layer;
}

} // namespace lightridge
