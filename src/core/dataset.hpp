/**
 * @file
 * Dataset containers shared by the trainer and the data generators.
 *
 * Images are stored at their native resolution (e.g. 28x28); the model's
 * encode path resizes them to the system resolution and performs the
 * paper's data_to_cplex amplitude encoding.
 */
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "tensor/field.hpp"

namespace lightridge {

/** Labeled grayscale image classification dataset. */
struct ClassDataset
{
    std::vector<RealMap> images;
    std::vector<int> labels;
    std::size_t num_classes = 0;

    std::size_t size() const { return images.size(); }

    /** Keep only the first n samples (for quick-scale benches). */
    void
    truncate(std::size_t n)
    {
        if (n < images.size()) {
            images.resize(n);
            labels.resize(n);
        }
    }
};

/** RGB classification dataset: three channel planes per sample. */
struct RgbDataset
{
    std::vector<std::array<RealMap, 3>> images;
    std::vector<int> labels;
    std::size_t num_classes = 0;

    std::size_t size() const { return images.size(); }

    void
    truncate(std::size_t n)
    {
        if (n < images.size()) {
            images.resize(n);
            labels.resize(n);
        }
    }
};

/** Image-to-image dataset (input image, target mask in [0, 1]). */
struct SegDataset
{
    std::vector<RealMap> images;
    std::vector<RealMap> masks;

    std::size_t size() const { return images.size(); }

    void
    truncate(std::size_t n)
    {
        if (n < images.size()) {
            images.resize(n);
            masks.resize(n);
        }
    }
};

} // namespace lightridge
