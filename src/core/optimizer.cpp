#include "core/optimizer.hpp"

#include <cmath>

namespace lightridge {

void
Optimizer::attach(std::vector<ParamView> params)
{
    params_ = std::move(params);
    onAttach();
}

void
Optimizer::zeroGrad()
{
    for (ParamView &p : params_)
        if (p.grad)
            std::fill(p.grad->begin(), p.grad->end(), Real(0));
}

void
Sgd::onAttach()
{
    velocity_.clear();
    for (const ParamView &p : params_)
        velocity_.emplace_back(p.value->size(), 0.0);
}

void
Sgd::step()
{
    for (std::size_t k = 0; k < params_.size(); ++k) {
        std::vector<Real> &value = *params_[k].value;
        const std::vector<Real> &grad = *params_[k].grad;
        std::vector<Real> &vel = velocity_[k];
        for (std::size_t i = 0; i < value.size(); ++i) {
            vel[i] = momentum_ * vel[i] - lr_ * grad[i];
            value[i] += vel[i];
        }
    }
}

void
Adam::onAttach()
{
    t_ = 0;
    m_.clear();
    v_.clear();
    for (const ParamView &p : params_) {
        m_.emplace_back(p.value->size(), 0.0);
        v_.emplace_back(p.value->size(), 0.0);
    }
}

void
Adam::step()
{
    ++t_;
    const Real bias1 = 1 - std::pow(beta1_, static_cast<Real>(t_));
    const Real bias2 = 1 - std::pow(beta2_, static_cast<Real>(t_));
    for (std::size_t k = 0; k < params_.size(); ++k) {
        std::vector<Real> &value = *params_[k].value;
        const std::vector<Real> &grad = *params_[k].grad;
        std::vector<Real> &m = m_[k];
        std::vector<Real> &v = v_[k];
        for (std::size_t i = 0; i < value.size(); ++i) {
            m[i] = beta1_ * m[i] + (1 - beta1_) * grad[i];
            v[i] = beta2_ * v[i] + (1 - beta2_) * grad[i] * grad[i];
            Real mhat = m[i] / bias1;
            Real vhat = v[i] / bias2;
            value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
        }
    }
}

} // namespace lightridge
