/**
 * @file
 * Raw diffractive layer: free-space hop + trainable phase modulation.
 *
 * This is lr.layers.diffractlayer_raw of the paper: the field first
 * diffracts over the configured distance (Eqs. 5-7), then each diffraction
 * unit applies its trainable phase phi and the complex-valued
 * regularization factor gamma (Section 3.2):
 *
 *   U_out = gamma * U_diffracted * exp(j * phi)
 */
#pragma once

#include <memory>

#include "core/layer.hpp"
#include "optics/propagator.hpp"
#include "utils/sync.hpp"

namespace lightridge {

/** Trainable phase-modulation layer preceded by a free-space hop. */
class DiffractiveLayer : public Layer
{
  public:
    /**
     * @param propagator shared pre-hop free-space operator
     * @param gamma amplitude regularization factor (1.0 = off)
     * @param rng optional source for small random phase init
     */
    DiffractiveLayer(std::shared_ptr<const Propagator> propagator,
                     Real gamma = 1.0, Rng *rng = nullptr);

    /** Copy shares the (immutable) published infer-modulation table. */
    DiffractiveLayer(const DiffractiveLayer &other);

    std::string kind() const override { return "diffractive"; }

    Field forward(const Field &in, bool training) override;
    Field backward(const Field &grad_out) override;
    Field infer(const Field &in) const override;
    void forwardInPlace(Field &u, bool training,
                        PropagationWorkspace &workspace) override;
    void backwardInPlace(Field &g, PropagationWorkspace &workspace) override;
    void inferInPlace(Field &u,
                      PropagationWorkspace &workspace) const override;
    void setPerturbation(const LayerPerturbation *perturbation) override
    {
        perturb_ = perturbation;
    }
    LayerPtr clone() const override;
    std::vector<ParamView> params() override;
    Json toJson() const override;

    /** Trainable per-unit phase values [rad]. */
    const RealMap &phase() const { return phase_; }
    RealMap &phase() { return phase_; }

    /** Regularization factor gamma applied to the amplitude. */
    Real gamma() const { return gamma_; }
    void setGamma(Real gamma) { gamma_ = gamma; }

    const Propagator &propagator() const { return *propagator_; }

    /** Restore phases from serialized form. */
    static std::unique_ptr<DiffractiveLayer>
    fromJson(const Json &j, std::shared_ptr<const Propagator> propagator);

  private:
    /**
     * Rebuild the cached modulation tables exp(j*phi) / exp(-j*phi) if
     * the phase mask changed since they were built (bitwise snapshot
     * compare). Evaluating sincos over the full mask per sample
     * dominated the train step; with the cache it runs once per
     * optimizer step. Values are the exact std::polar results the
     * uncached loops produced, so training stays bitwise-identical.
     * Training-path only: infer() keeps computing polar directly and
     * stays safe for concurrent use of a shared instance.
     */
    void ensureModulation();

    /** Immutable published exp(j*phi) table + the phases it encodes. */
    struct InferModulation
    {
        Field table;
        RealMap phase;
    };

    /**
     * Thread-safe shared-instance modulation cache for the inference
     * path: returns an immutable exp(j*phi) table matching the current
     * phase mask, rebuilding (under a mutex) only when the mask changed
     * since the last publish. Values are the exact std::polar results
     * the uncached loop produced, so inference stays bitwise-identical —
     * but the sincos sweep now runs once per weight update instead of
     * once per request per worker, which is what lets one shared
     * DonnModel instance serve every engine worker without cloning.
     */
    std::shared_ptr<const InferModulation> inferModulation() const
        LIGHTRIDGE_EXCLUDES(infer_cache_mutex_);

    /** Currently published table (no rebuild); for the copy constructor,
     *  which shares the immutable snapshot across instances. */
    std::shared_ptr<const InferModulation> publishedModulation() const
        LIGHTRIDGE_EXCLUDES(infer_cache_mutex_);

    std::shared_ptr<const Propagator> propagator_;
    Real gamma_;
    RealMap phase_;
    RealMap phase_grad_;

    // Modulation cache (training only; see ensureModulation()).
    Field modulation_;
    Field modulation_conj_;
    RealMap modulation_phase_; ///< snapshot the tables were built from

    // Shared-instance inference cache (see inferModulation()).
    mutable Mutex infer_cache_mutex_;
    mutable std::shared_ptr<const InferModulation> infer_modulation_
        LIGHTRIDGE_GUARDED_BY(infer_cache_mutex_);

    // Activation caches (training only).
    Field cached_diffracted_;
    Field cached_out_;

    // Attached misalignment realization (externally owned; see
    // Layer::setPerturbation). Clones start detached.
    const LayerPerturbation *perturb_ = nullptr;
};

} // namespace lightridge
