#include "core/session.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "utils/log.hpp"
#include "utils/thread_pool.hpp"
#include "utils/timer.hpp"

namespace lightridge {

namespace {

/** Shuffled index order for one epoch. */
std::vector<std::size_t>
epochOrder(std::size_t n, bool shuffle, Rng *rng)
{
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (shuffle)
        std::shuffle(order.begin(), order.end(), rng->engine());
    return order;
}

} // namespace

Session::Session(Task &task, TrainConfig config)
    : task_(task), config_(config), optimizer_(config.lr), rng_(config.seed)
{
    task_.configure(config_);
    optimizer_.attach(task_.params());
}

Session::~Session() = default;

void
Session::addCallback(Callback callback)
{
    callbacks_.push_back(std::move(callback));
}

void
Session::calibrate()
{
    task_.calibrate();
    calibrated_ = true;
}

void
Session::annealTau(int epoch)
{
    if (config_.epochs <= 1) {
        task_.setTau(config_.tau_end);
        return;
    }
    Real t = static_cast<Real>(epoch) / (config_.epochs - 1);
    task_.setTau(config_.tau_start +
                 t * (config_.tau_end - config_.tau_start));
}

EpochStats
Session::trainEpoch()
{
    ++epoch_counter_;
    std::size_t workers = config_.workers;
    if (workers == 0)
        workers = std::max<std::size_t>(
            ThreadPool::global().workerCount(), 1);
    workers = std::min({workers, config_.batch, task_.trainSize()});
    std::vector<std::size_t> order =
        epochOrder(task_.trainSize(), config_.shuffle, &rng_);
    if (workers >= 2)
        return trainEpochParallel(order, workers);
    return trainEpochSerial(order);
}

EpochStats
Session::trainEpochSerial(const std::vector<std::size_t> &order)
{
    EpochStats stats;
    WallTimer timer;

    std::size_t correct = 0;
    std::size_t in_batch = 0;
    task_.zeroGrad();
    for (std::size_t idx : order) {
        SampleResult sample = task_.trainSample(idx);
        stats.train_loss += sample.loss;
        if (sample.hit)
            ++correct;
        if (++in_batch == config_.batch) {
            optimizer_.step();
            task_.zeroGrad();
            in_batch = 0;
        }
    }
    if (in_batch > 0) {
        optimizer_.step();
        task_.zeroGrad();
    }
    const std::size_t n = std::max<std::size_t>(order.size(), 1);
    stats.train_loss /= n;
    stats.train_acc = static_cast<Real>(correct) / n;
    stats.seconds = timer.seconds();
    return stats;
}

EpochStats
Session::trainEpochParallel(const std::vector<std::size_t> &order,
                            std::size_t workers)
{
    EpochStats stats;
    WallTimer timer;

    // Per-epoch replica seeds: epoch and replica index occupy disjoint
    // bit ranges so no two (epoch, replica) pairs ever alias to the same
    // noise stream.
    std::vector<uint64_t> seeds(workers);
    for (std::size_t r = 0; r < workers; ++r) {
        uint64_t tag = (static_cast<uint64_t>(epoch_counter_) << 32) |
                       static_cast<uint64_t>(r + 1);
        seeds[r] = config_.seed ^ (0x9e3779b97f4a7c15ull * tag);
    }
    task_.buildReplicas(seeds); // clones carry current params/calibration
    std::vector<ParamView> main_params = task_.params();
    ThreadPool &pool = ThreadPool::global();

    std::size_t correct = 0;
    std::vector<Real> loss_part(workers);
    std::vector<std::size_t> correct_part(workers);
    task_.zeroGrad();

    for (std::size_t start = 0; start < order.size();
         start += config_.batch) {
        const std::size_t batch =
            std::min(config_.batch, order.size() - start);
        const std::size_t active = std::min(workers, batch);

        std::fill(loss_part.begin(), loss_part.end(), Real(0));
        std::fill(correct_part.begin(), correct_part.end(), std::size_t{0});

        // Round-robin sample assignment: replica r trains samples
        // r, r+active, ... of the batch, sequentially (each layer caches
        // one sample's activations between forward and backward).
        pool.parallelFor(active, [&](std::size_t r) {
            for (std::size_t j = r; j < batch; j += active) {
                SampleResult sample =
                    task_.trainSampleOn(r, order[start + j]);
                loss_part[r] += sample.loss;
                if (sample.hit)
                    ++correct_part[r];
            }
        });

        // Merge replica gradients in fixed replica order (deterministic
        // for a given worker count), step, and redistribute parameters.
        for (std::size_t r = 0; r < active; ++r) {
            stats.train_loss += loss_part[r];
            correct += correct_part[r];
            std::vector<ParamView> rep_params = task_.replicaParams(r);
            for (std::size_t p = 0; p < main_params.size(); ++p) {
                const std::vector<Real> &src = *rep_params[p].grad;
                std::vector<Real> &dst = *main_params[p].grad;
                for (std::size_t i = 0; i < dst.size(); ++i)
                    dst[i] += src[i];
            }
            task_.zeroReplicaGrad(r);
        }
        optimizer_.step();
        task_.zeroGrad();
        task_.syncReplicas();
    }

    const std::size_t n = std::max<std::size_t>(order.size(), 1);
    stats.train_loss /= n;
    stats.train_acc = static_cast<Real>(correct) / n;
    stats.seconds = timer.seconds();
    return stats;
}

std::vector<EpochStats>
Session::fit()
{
    if (config_.calibrate && !calibrated_)
        calibrate();
    std::vector<EpochStats> history;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        annealTau(epoch);
        EpochStats stats = trainEpoch();
        stats.epoch = epoch;
        if (task_.hasTest()) {
            TaskMetrics metrics = task_.evaluate();
            stats.test_acc = metrics.primary;
            stats.test_top3 = metrics.top3;
        }
        if (config_.verbose) {
            LR_LOG(Info) << task_.kind() << " epoch " << epoch
                         << " loss=" << stats.train_loss
                         << " train_acc=" << stats.train_acc
                         << " test=" << stats.test_acc
                         << " top3=" << stats.test_top3 << " ("
                         << stats.seconds << "s)";
        }
        history.push_back(stats);
        bool keep_going = true;
        for (Callback &callback : callbacks_)
            keep_going = callback(stats, *this) && keep_going;
        if (!keep_going)
            break;
    }
    return history;
}

Session::Callback
checkpointBestCallback(std::string path)
{
    auto best = std::make_shared<Real>(-1.0);
    return [best, path = std::move(path)](const EpochStats &stats,
                                          Session &session) {
        if (stats.test_acc > *best) {
            *best = stats.test_acc;
            session.task().save(path);
        }
        return true;
    };
}

Session::Callback
earlyStopCallback(int patience)
{
    auto best = std::make_shared<Real>(0.0);
    auto stale = std::make_shared<int>(0);
    auto first = std::make_shared<bool>(true);
    return [best, stale, first, patience](const EpochStats &stats,
                                          Session &) {
        if (*first || stats.train_loss < *best) {
            *first = false;
            *best = stats.train_loss;
            *stale = 0;
            return true;
        }
        return ++*stale < patience;
    };
}

} // namespace lightridge
