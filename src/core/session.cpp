#include "core/session.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <exception>
#include <memory>
#include <numeric>

#include "data/source.hpp"
#include "utils/log.hpp"
#include "utils/sync.hpp"
#include "utils/thread_pool.hpp"
#include "utils/timer.hpp"

namespace lightridge {

namespace {

/** Shuffled index order for one epoch (null-stream tasks). */
std::vector<std::size_t>
epochOrder(std::size_t n, bool shuffle, Rng *rng)
{
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (shuffle)
        std::shuffle(order.begin(), order.end(), rng->engine());
    return order;
}

/** Scoped source epoch: beginEpoch now, endEpoch on every exit path. */
struct StreamEpochGuard
{
    DataSource *stream;

    StreamEpochGuard(DataSource *s, const std::vector<std::size_t> *order)
        : stream(s)
    {
        if (stream != nullptr)
            stream->beginEpoch(order);
    }

    ~StreamEpochGuard()
    {
        if (stream != nullptr)
            stream->endEpoch();
    }

    StreamEpochGuard(const StreamEpochGuard &) = delete;
    StreamEpochGuard &operator=(const StreamEpochGuard &) = delete;
};

} // namespace

Session::Session(Task &task, TrainConfig config)
    : task_(task), config_(config), optimizer_(config.lr), rng_(config.seed)
{
    task_.configure(config_);
    optimizer_.attach(task_.params());
}

Session::~Session() = default;

void
Session::addCallback(Callback callback)
{
    callbacks_.push_back(std::move(callback));
}

void
Session::calibrate()
{
    task_.calibrate();
    calibrated_ = true;
}

void
Session::annealTau(int epoch)
{
    if (config_.epochs <= 1) {
        task_.setTau(config_.tau_end);
        return;
    }
    Real t = static_cast<Real>(epoch) / (config_.epochs - 1);
    task_.setTau(config_.tau_start +
                 t * (config_.tau_end - config_.tau_start));
}

std::size_t
Session::resolveWorkers(const TrainConfig &config, std::size_t train_size)
{
    std::size_t workers = config.workers;
    if (workers == 0)
        workers = std::max<std::size_t>(
            ThreadPool::global().workerCount(), 1);
    return std::min({workers, config.batch, train_size});
}

EpochStats
Session::trainEpoch()
{
    ++epoch_counter_;
    mid_history_.clear();
    const std::size_t workers =
        resolveWorkers(config_, task_.trainSize());
    // Two-level order (shard permutation, then intra-shard permutations)
    // drawn from the session rng: a single-shard layout — every in-memory
    // task — consumes the rng exactly like the historical flat shuffle,
    // and any two sources with the same shard layout get the same order.
    DataSource *stream = task_.trainStream();
    std::vector<std::size_t> order =
        stream != nullptr ? twoLevelEpochOrder(stream->shardSizes(),
                                               config_.shuffle, &rng_)
                          : epochOrder(task_.trainSize(), config_.shuffle,
                                       &rng_);
    StreamEpochGuard epoch_guard(stream, &order);
    if (workers >= 2 && config_.pipeline)
        return trainEpochPipelined(order, workers);
    if (workers >= 2)
        return trainEpochParallel(order, workers);
    return trainEpochSerial(order);
}

uint64_t
Session::perturbationDrawSeed(uint64_t seed, int epoch,
                              std::size_t batch_index)
{
    // Epoch and batch index occupy disjoint bit ranges, and the mixing
    // constant differs from replicaSeeds' so the misalignment stream can
    // never alias a replica noise stream. Depends only on
    // (seed, epoch, batch): the same errors are drawn for a batch no
    // matter how many workers process it.
    uint64_t tag = (static_cast<uint64_t>(epoch) << 32) |
                   static_cast<uint64_t>(batch_index);
    return seed ^ (0xbf58476d1ce4e5b9ull * tag);
}

std::vector<uint64_t>
Session::replicaSeeds(std::size_t workers) const
{
    // Per-epoch replica seeds: epoch and replica index occupy disjoint
    // bit ranges so no two (epoch, replica) pairs ever alias to the same
    // noise stream.
    std::vector<uint64_t> seeds(workers);
    for (std::size_t r = 0; r < workers; ++r) {
        uint64_t tag = (static_cast<uint64_t>(epoch_counter_) << 32) |
                       static_cast<uint64_t>(r + 1);
        seeds[r] = config_.seed ^ (0x9e3779b97f4a7c15ull * tag);
    }
    return seeds;
}

bool
Session::devEvalDue(std::size_t batch_index) const
{
    return config_.dev_eval_every_batches > 0 && task_.hasTest() &&
           (batch_index + 1) % config_.dev_eval_every_batches == 0;
}

void
Session::midEpochEval(Real loss_sum, std::size_t correct, std::size_t seen,
                      std::size_t batch_index, double seconds)
{
    EpochStats stats;
    stats.epoch = epoch_counter_ - 1;
    stats.mid_epoch = true;
    stats.batch = batch_index + 1;
    const std::size_t n = std::max<std::size_t>(seen, 1);
    stats.train_loss = loss_sum / n;
    stats.train_acc = static_cast<Real>(correct) / n;
    stats.seconds = seconds;
    // Evaluation runs clean; the next batch redraws its own realization.
    if (task_.perturbationActive())
        task_.clearPerturbation();
    TaskMetrics metrics = task_.evaluate();
    stats.test_acc = metrics.primary;
    stats.test_top3 = metrics.top3;
    if (config_.verbose) {
        LR_LOG(Info) << task_.kind() << " epoch " << stats.epoch
                     << " batch " << stats.batch
                     << " loss=" << stats.train_loss
                     << " dev=" << stats.test_acc;
    }
    mid_history_.push_back(stats);
    for (Callback &callback : callbacks_)
        callback(stats, *this);
}

EpochStats
Session::trainEpochSerial(const std::vector<std::size_t> &order)
{
    EpochStats stats;
    WallTimer timer;

    DataSource *stream = task_.trainStream();
    const bool perturbed = task_.perturbationActive();
    std::size_t correct = 0;
    std::size_t in_batch = 0;
    task_.zeroGrad();
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (in_batch == 0) {
            if (stream != nullptr)
                stream->stageRange(
                    i, std::min(i + config_.batch, order.size()));
            if (perturbed)
                task_.samplePerturbation(
                    perturbationSeed(i / config_.batch));
        }
        SampleResult sample = task_.trainSample(order[i]);
        stats.train_loss += sample.loss;
        if (sample.hit)
            ++correct;
        if (++in_batch == config_.batch) {
            optimizer_.step();
            task_.zeroGrad();
            in_batch = 0;
            if (devEvalDue(i / config_.batch))
                midEpochEval(stats.train_loss, correct, i + 1,
                             i / config_.batch, timer.seconds());
        }
    }
    if (in_batch > 0) {
        optimizer_.step();
        task_.zeroGrad();
    }
    if (perturbed)
        task_.clearPerturbation();
    const std::size_t n = std::max<std::size_t>(order.size(), 1);
    stats.train_loss /= n;
    stats.train_acc = static_cast<Real>(correct) / n;
    stats.seconds = timer.seconds();
    return stats;
}

EpochStats
Session::trainEpochParallel(const std::vector<std::size_t> &order,
                            std::size_t workers)
{
    EpochStats stats;
    WallTimer timer;

    task_.buildReplicas(replicaSeeds(workers)); // clones carry current
                                                // params/calibration
    std::vector<ParamView> main_params = task_.params();
    ThreadPool &pool = ThreadPool::global();

    DataSource *stream = task_.trainStream();
    const bool perturbed = task_.perturbationActive();
    std::size_t correct = 0;
    std::vector<Real> loss_part(workers);
    std::vector<std::size_t> correct_part(workers);
    task_.zeroGrad();

    for (std::size_t start = 0; start < order.size();
         start += config_.batch) {
        const std::size_t batch =
            std::min(config_.batch, order.size() - start);
        const std::size_t active = std::min(workers, batch);

        // The pool is idle here, so staging the batch's shards and
        // rewriting the shared misalignment realization are race-free;
        // workers read both concurrently below.
        if (stream != nullptr)
            stream->stageRange(start, start + batch);
        if (perturbed)
            task_.samplePerturbation(
                perturbationSeed(start / config_.batch));

        std::fill(loss_part.begin(), loss_part.end(), Real(0));
        std::fill(correct_part.begin(), correct_part.end(), std::size_t{0});

        // Round-robin sample assignment: replica r trains samples
        // r, r+active, ... of the batch, sequentially (each layer caches
        // one sample's activations between forward and backward).
        pool.parallelFor(active, [&](std::size_t r) {
            for (std::size_t j = r; j < batch; j += active) {
                SampleResult sample =
                    task_.trainSampleOn(r, order[start + j]);
                loss_part[r] += sample.loss;
                if (sample.hit)
                    ++correct_part[r];
            }
        });

        // Merge replica gradients in fixed replica order (deterministic
        // for a given worker count), step, and redistribute parameters.
        for (std::size_t r = 0; r < active; ++r) {
            stats.train_loss += loss_part[r];
            correct += correct_part[r];
            std::vector<ParamView> rep_params = task_.replicaParams(r);
            for (std::size_t p = 0; p < main_params.size(); ++p) {
                const std::vector<Real> &src = *rep_params[p].grad;
                std::vector<Real> &dst = *main_params[p].grad;
                for (std::size_t i = 0; i < dst.size(); ++i)
                    dst[i] += src[i];
            }
            task_.zeroReplicaGrad(r);
        }
        optimizer_.step();
        task_.zeroGrad();
        task_.syncReplicas();
        if (devEvalDue(start / config_.batch))
            midEpochEval(stats.train_loss, correct, start + batch,
                         start / config_.batch, timer.seconds());
    }
    if (perturbed)
        task_.clearPerturbation();

    const std::size_t n = std::max<std::size_t>(order.size(), 1);
    stats.train_loss /= n;
    stats.train_acc = static_cast<Real>(correct) / n;
    stats.seconds = timer.seconds();
    return stats;
}

EpochStats
Session::trainEpochPipelined(const std::vector<std::size_t> &order,
                             std::size_t workers)
{
    // Software-pipelined replica engine: while the main thread merges
    // batch t's staged gradients and runs the Adam step, the pool is
    // already computing batch t+1's forward/backward passes. Replicas
    // therefore see parameters one step stale (classic delayed data
    // parallelism); everything else — round-robin sample assignment,
    // fixed-order merge, per-epoch replica seeds — matches the
    // synchronous engine, so results are deterministic for a fixed
    // worker count regardless of thread timing or core count.
    EpochStats stats;
    WallTimer timer;

    task_.buildReplicas(replicaSeeds(workers));
    std::vector<ParamView> main_params = task_.params();
    ThreadPool &pool = ThreadPool::global();

    const std::size_t num_batches =
        (order.size() + config_.batch - 1) / config_.batch;

    // Double-buffered per-replica gradient staging: batch t writes slot
    // t % 2 while the main thread drains slot (t - 1) % 2, so a replica
    // never overwrites gradients that are still being merged.
    struct ReplicaStage
    {
        std::vector<std::vector<Real>> grads;
        Real loss = 0;
        std::size_t correct = 0;
    };
    std::array<std::vector<ReplicaStage>, 2> stages;
    for (auto &slot : stages) {
        slot.resize(workers);
        for (ReplicaStage &stage : slot) {
            stage.grads.resize(main_params.size());
            for (std::size_t p = 0; p < main_params.size(); ++p)
                stage.grads[p].resize(main_params[p].grad->size());
        }
    }

    // Two-slot completion latch for the in-flight batches. The lock
    // discipline lives in the member functions so every path through the
    // pipeline (worker completion, worker failure, enqueue failure, the
    // main thread's slot wait, the unwind drain) shares one checked
    // protocol instead of five hand-rolled lock scopes.
    struct PipelineLatch
    {
        Mutex mutex;
        CondVar cv;
        std::array<std::size_t, 2> pending LIGHTRIDGE_GUARDED_BY(mutex) =
            {0, 0};
        std::exception_ptr error LIGHTRIDGE_GUARDED_BY(mutex);

        /** Declare `count` jobs outstanding for `slot`. */
        void
        arm(std::size_t slot, std::size_t count) LIGHTRIDGE_EXCLUDES(mutex)
        {
            MutexLock lock(mutex);
            pending[slot] = count;
        }

        /** Retire `count` completions from `slot`. */
        void
        complete(std::size_t slot, std::size_t count)
            LIGHTRIDGE_EXCLUDES(mutex)
        {
            MutexLock lock(mutex);
            pending[slot] -= count;
            cv.notify_all();
        }

        /** Record the current exception and retire one job of `slot`. */
        void
        fail(std::size_t slot) LIGHTRIDGE_EXCLUDES(mutex)
        {
            MutexLock lock(mutex);
            if (!error)
                error = std::current_exception();
            --pending[slot];
            cv.notify_all();
        }

        /**
         * Block until `slot`'s batch retired. If a replica failed, wait
         * for the other slot's jobs too (the stages/latch must outlive
         * every job) and rethrow the replica's exception.
         */
        void
        waitSlot(std::size_t slot) LIGHTRIDGE_EXCLUDES(mutex)
        {
            MutexLock lock(mutex);
            while (pending[slot] != 0)
                cv.wait(mutex);
            if (error) {
                while (pending[0] != 0 || pending[1] != 0)
                    cv.wait(mutex);
                std::rethrow_exception(error);
            }
        }

        /** Block until both slots retired (unwind safety; no rethrow). */
        void
        drain() LIGHTRIDGE_EXCLUDES(mutex)
        {
            MutexLock lock(mutex);
            while (pending[0] != 0 || pending[1] != 0)
                cv.wait(mutex);
        }
    } latch;

    auto batchShape = [&](std::size_t t, std::size_t &start,
                          std::size_t &batch, std::size_t &active) {
        start = t * config_.batch;
        batch = std::min(config_.batch, order.size() - start);
        active = std::min(workers, batch);
    };

    auto replicaJob = [this, &stages, &latch,
                       &order](std::size_t slot, std::size_t r,
                               std::size_t start, std::size_t batch,
                               std::size_t active) {
        try {
            ReplicaStage &stage = stages[slot][r];
            stage.loss = 0;
            stage.correct = 0;
            for (std::size_t j = r; j < batch; j += active) {
                SampleResult sample =
                    task_.trainSampleOn(r, order[start + j]);
                stage.loss += sample.loss;
                if (sample.hit)
                    ++stage.correct;
            }
            // Stage the accumulated gradients and clear the replica so
            // it can start the next batch immediately.
            std::vector<ParamView> rep_params = task_.replicaParams(r);
            for (std::size_t p = 0; p < rep_params.size(); ++p)
                stage.grads[p] = *rep_params[p].grad;
            task_.zeroReplicaGrad(r);
        } catch (...) {
            latch.fail(slot);
            return;
        }
        latch.complete(slot, 1);
    };

    DataSource *stream = task_.trainStream();
    const bool perturbed = task_.perturbationActive();

    auto launch = [&](std::size_t t) {
        std::size_t start = 0, batch = 0, active = 0;
        batchShape(t, start, batch, active);
        const std::size_t slot = t % 2;
        // launch(t) runs on the main thread with no replica jobs in
        // flight for either slot (batch t-1 was just waited on, batch
        // t-2 one iteration earlier), so staging batch t's shards and
        // rewriting the shared misalignment realization are race-free
        // before batch t's jobs read them. The prefetcher decoded the
        // staged shards while the previous batch computed, so the stage
        // call normally just retires already-resident slots.
        if (stream != nullptr)
            stream->stageRange(start, start + batch);
        if (perturbed)
            task_.samplePerturbation(perturbationSeed(t));
        latch.arm(slot, active);
        for (std::size_t r = 0; r < active; ++r) {
            try {
                pool.enqueue([&replicaJob, slot, r, start, batch, active] {
                    replicaJob(slot, r, start, batch, active);
                });
            } catch (...) {
                // Jobs r..active-1 never made it into the queue: take
                // their completions off the latch so the drain guard
                // (and any waiter) sees a consistent count.
                latch.complete(slot, active - r);
                throw;
            }
        }
    };

    // Unwind safety: the pool jobs reference the locals above, so if
    // anything on THIS thread throws while a batch is in flight
    // (enqueue's std::function allocation, the optimizer, a task hook),
    // the frame must not die before the jobs drain. Declared last so it
    // is destroyed — and waits — before anything the jobs touch.
    struct DrainGuard
    {
        PipelineLatch &latch;

        ~DrainGuard() { latch.drain(); }
    } drain{latch};

    std::size_t correct = 0;
    task_.zeroGrad();
    launch(0);
    for (std::size_t t = 0; t < num_batches; ++t) {
        latch.waitSlot(t % 2);
        // The pool is idle between batches: publish the parameters from
        // the last optimizer step, then put it back to work on batch t+1
        // while this thread merges batch t and steps. On a dev-eval
        // batch the launch is deferred until after the evaluation — the
        // pool must be free to run it — which stalls the pipeline for
        // one batch but cannot change the numbers: replicas were synced
        // above with the pre-step parameters either way.
        task_.syncReplicas();
        const bool eval_here = devEvalDue(t);
        if (!eval_here && t + 1 < num_batches)
            launch(t + 1);

        std::size_t start = 0, batch = 0, active = 0;
        batchShape(t, start, batch, active);
        for (std::size_t r = 0; r < active; ++r) {
            ReplicaStage &stage = stages[t % 2][r];
            stats.train_loss += stage.loss;
            correct += stage.correct;
            for (std::size_t p = 0; p < main_params.size(); ++p) {
                const std::vector<Real> &src = stage.grads[p];
                std::vector<Real> &dst = *main_params[p].grad;
                for (std::size_t i = 0; i < dst.size(); ++i)
                    dst[i] += src[i];
            }
        }
        optimizer_.step();
        task_.zeroGrad();
        if (eval_here) {
            midEpochEval(stats.train_loss, correct, start + batch, t,
                         timer.seconds());
            if (t + 1 < num_batches)
                launch(t + 1);
        }
    }
    task_.syncReplicas();
    if (perturbed)
        task_.clearPerturbation();

    const std::size_t n = std::max<std::size_t>(order.size(), 1);
    stats.train_loss /= n;
    stats.train_acc = static_cast<Real>(correct) / n;
    stats.seconds = timer.seconds();
    return stats;
}

std::vector<EpochStats>
Session::fit()
{
    if (config_.calibrate && !calibrated_)
        calibrate();
    std::vector<EpochStats> history;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        annealTau(epoch);
        EpochStats stats = trainEpoch();
        stats.epoch = epoch;
        // Mid-epoch dev-eval snapshots precede their epoch's entry.
        history.insert(history.end(), mid_history_.begin(),
                       mid_history_.end());
        mid_history_.clear();
        if (task_.hasTest()) {
            TaskMetrics metrics = task_.evaluate();
            stats.test_acc = metrics.primary;
            stats.test_top3 = metrics.top3;
        }
        if (config_.verbose) {
            LR_LOG(Info) << task_.kind() << " epoch " << epoch
                         << " loss=" << stats.train_loss
                         << " train_acc=" << stats.train_acc
                         << " test=" << stats.test_acc
                         << " top3=" << stats.test_top3 << " ("
                         << stats.seconds << "s)";
        }
        history.push_back(stats);
        bool keep_going = true;
        for (Callback &callback : callbacks_)
            keep_going = callback(stats, *this) && keep_going;
        if (!keep_going)
            break;
    }
    return history;
}

Session::Callback
checkpointBestCallback(std::string path)
{
    auto best = std::make_shared<Real>(-1.0);
    return [best, path = std::move(path)](const EpochStats &stats,
                                          Session &session) {
        if (stats.test_acc > *best) {
            *best = stats.test_acc;
            session.task().save(path);
        }
        return true;
    };
}

Session::Callback
earlyStopCallback(int patience)
{
    auto best = std::make_shared<Real>(0.0);
    auto stale = std::make_shared<int>(0);
    auto first = std::make_shared<bool>(true);
    return [best, stale, first, patience](const EpochStats &stats,
                                          Session &) {
        if (*first || stats.train_loss < *best) {
            *first = false;
            *best = stats.train_loss;
            *stale = 0;
            return true;
        }
        return ++*stale < patience;
    };
}

} // namespace lightridge
