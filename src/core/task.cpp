#include "core/task.hpp"

#include <algorithm>
#include <cmath>

#include "core/skip.hpp"
#include "utils/log.hpp"
#include "utils/thread_pool.hpp"

namespace lightridge {

Task::~Task() = default;

void
forEachModelLayer(DonnModel &model, const std::function<void(Layer *)> &fn)
{
    std::function<void(Layer *)> visit = [&](Layer *layer) {
        fn(layer);
        if (auto *s = dynamic_cast<OpticalSkipLayer *>(layer))
            for (std::size_t i = 0; i < s->innerDepth(); ++i)
                visit(s->innerLayer(i));
    };
    for (std::size_t i = 0; i < model.depth(); ++i)
        visit(model.layer(i));
}

void
applyModelGamma(DonnModel &model, Real gamma)
{
    forEachModelLayer(model, [gamma](Layer *layer) {
        if (auto *d = dynamic_cast<DiffractiveLayer *>(layer))
            d->setGamma(gamma);
        else if (auto *c = dynamic_cast<CodesignLayer *>(layer))
            c->setGamma(gamma);
    });
}

void
applyModelTau(DonnModel &model, Real tau)
{
    forEachModelLayer(model, [tau](Layer *layer) {
        if (auto *c = dynamic_cast<CodesignLayer *>(layer))
            c->setTau(tau);
    });
}

void
bindModelNoiseRng(DonnModel &model, Rng *rng)
{
    forEachModelLayer(model, [rng](Layer *layer) {
        if (auto *c = dynamic_cast<CodesignLayer *>(layer))
            if (c->hasRng())
                c->setRng(rng);
    });
}

std::vector<const Propagator *>
modelLayerHops(const DonnModel &model)
{
    std::vector<const Propagator *> hops(model.depth(), nullptr);
    for (std::size_t i = 0; i < model.depth(); ++i) {
        const Layer *layer = model.layer(i);
        if (auto *d = dynamic_cast<const DiffractiveLayer *>(layer))
            hops[i] = &d->propagator();
        else if (auto *c = dynamic_cast<const CodesignLayer *>(layer))
            hops[i] = &c->propagator();
    }
    return hops;
}

// --------------------------------------------------------------------------
// DonnTaskBase replica engine
// --------------------------------------------------------------------------

DonnTaskBase::Replica::Replica(const DonnModel &source, uint64_t seed)
    : model(source.clone()), rng(seed)
{
    // clone() copies rng_ pointers as-is; point every noise-enabled
    // codesign layer (skip interiors included) at this replica's own
    // source instead, so replicas never share the session's
    // (non-thread-safe) rng. Noiseless layers stay noiseless, matching
    // the serial path exactly.
    bindModelNoiseRng(model, &rng);
    params = model.params();
}

void
DonnTaskBase::buildReplicas(const std::vector<uint64_t> &seeds)
{
    // Rebuilt every epoch: clones capture the current tau/gamma annealing
    // state and detector calibration, and per-epoch seeds keep Gumbel
    // noise streams deterministic for a fixed worker count.
    replicas_.clear();
    replicas_.reserve(seeds.size());
    for (uint64_t seed : seeds)
        replicas_.push_back(std::make_unique<Replica>(model_, seed));
}

std::vector<ParamView>
DonnTaskBase::replicaParams(std::size_t r)
{
    return replicas_[r]->params;
}

void
DonnTaskBase::zeroReplicaGrad(std::size_t r)
{
    replicas_[r]->model.zeroGrad();
}

SampleResult
DonnTaskBase::trainSampleOn(std::size_t r, std::size_t index)
{
    return sampleStep(replicas_[r]->model, index);
}

void
DonnTaskBase::syncReplicas()
{
    std::vector<ParamView> main_params = model_.params();
    for (auto &replica : replicas_) {
        for (std::size_t p = 0; p < main_params.size(); ++p)
            *replica->params[p].value = *main_params[p].value;
        replica->model.detector().setAmpFactor(model_.detector().ampFactor());
    }
}

void
DonnTaskBase::setPerturbationSpec(const PerturbationSpec &spec)
{
    if (!spec.active()) {
        clearPerturbation();
        perturb_sampler_.reset();
        return;
    }
    perturb_sampler_ = std::make_unique<PerturbationSampler>(
        spec, modelLayerHops(model_), model_.hopPropagator().get());
}

void
DonnTaskBase::samplePerturbation(uint64_t draw_seed)
{
    if (!perturb_sampler_)
        return;
    // One shared realization for the primary and every replica: the
    // values are seed-determined (identical at any worker count) and
    // read-only while workers are in flight.
    perturb_sampler_->sample(draw_seed, perturb_realization_);
    model_.setPerturbation(&perturb_realization_);
    for (auto &replica : replicas_)
        replica->model.setPerturbation(&perturb_realization_);
}

void
DonnTaskBase::clearPerturbation()
{
    model_.setPerturbation(nullptr);
    for (auto &replica : replicas_)
        replica->model.setPerturbation(nullptr);
}

// --------------------------------------------------------------------------
// ClassificationTask
// --------------------------------------------------------------------------

ClassificationTask::ClassificationTask(DonnModel &model,
                                       const ClassDataset &train,
                                       const ClassDataset *test)
    : DonnTaskBase(model),
      own_source_(std::make_unique<InMemoryClassSource>(train)),
      source_(own_source_.get()), test_(test)
{}

ClassificationTask::ClassificationTask(DonnModel &model, ClassSource &train,
                                       const ClassDataset *test)
    : DonnTaskBase(model), source_(&train), test_(test)
{}

void
ClassificationTask::calibrate()
{
    if (config_.gamma > 0)
        applyModelGamma(model_, config_.gamma);

    std::size_t probe = config_.calib_probe > 0 ? config_.calib_probe : 16;
    probe = std::min(probe, source_->size());
    if (probe == 0)
        return;
    source_->stageIndices(0, probe);
    Real mean_top = 0;
    model_.detector().setAmpFactor(1.0);
    for (std::size_t i = 0; i < probe; ++i) {
        Field input = model_.encode(source_->image(i));
        std::vector<Real> logits = model_.forwardLogits(input, false);
        mean_top += *std::max_element(logits.begin(), logits.end());
    }
    mean_top /= static_cast<Real>(probe);
    if (mean_top > 0)
        model_.detector().setAmpFactor(config_.calib_target / mean_top);
    LR_LOG(Debug) << "calibrated amp_factor="
                  << model_.detector().ampFactor();
}

SampleResult
ClassificationTask::sampleStep(DonnModel &model, std::size_t index)
{
    // The whole forward/backward pass runs in one leased buffer from the
    // calling thread's workspace: encode -> stack -> logits -> gradient ->
    // adjoint unwind, with zero heap allocations in steady state.
    SampleResult result;
    PropagationWorkspace &workspace = PropagationWorkspace::threadLocal();
    const Grid grid = model.spec().grid();
    WorkspaceField u(workspace, grid.n, grid.n);
    const int label = source_->label(index);
    model.encodeInto(source_->image(index), u.get());
    std::vector<Real> logits = model.forwardLogitsInPlace(u.get(), true,
                                                          workspace);
    LossResult loss = classificationLoss(config_.loss, logits, label);
    result.loss = loss.value;
    int pred = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    result.hit = pred == label;
    model.backwardFromLogitsInPlace(loss.dlogits, u.get(), workspace);
    return result;
}

TaskMetrics
ClassificationTask::evaluate()
{
    TaskMetrics metrics;
    if (test_ == nullptr || test_->size() == 0)
        return metrics;
    const ClassDataset &data = *test_;

    std::vector<std::uint8_t> hit1(data.size(), 0);
    std::vector<std::uint8_t> hit3(data.size(), 0);
    ThreadPool::global().parallelFor(data.size(), [&](std::size_t i) {
        std::vector<Real> logits =
            model_.detector().readout(
                model_.inferField(model_.encode(data.images[i])));
        hit1[i] = topKContains(logits, data.labels[i], 1) ? 1 : 0;
        hit3[i] = topKContains(logits, data.labels[i], 3) ? 1 : 0;
    });

    std::size_t top1 = 0, top3 = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        top1 += hit1[i];
        top3 += hit3[i];
    }
    metrics.primary = static_cast<Real>(top1) / data.size();
    metrics.top3 = static_cast<Real>(top3) / data.size();
    return metrics;
}

// --------------------------------------------------------------------------
// SegmentationTask
// --------------------------------------------------------------------------

SegmentationTask::SegmentationTask(DonnModel &model, const SegDataset &train,
                                   const SegDataset *test)
    : DonnTaskBase(model),
      own_source_(std::make_unique<InMemorySegSource>(train)),
      source_(own_source_.get()), test_(test)
{}

SegmentationTask::SegmentationTask(DonnModel &model, SegSource &train,
                                   const SegDataset *test)
    : DonnTaskBase(model), source_(&train), test_(test)
{}

void
SegmentationTask::calibrate()
{
    std::size_t probe = config_.calib_probe > 0 ? config_.calib_probe : 8;
    probe = std::min(probe, source_->size());
    if (probe == 0)
        return;
    source_->stageIndices(0, probe);
    Real mean_intensity = 0;
    Real mean_mask = 0;
    for (std::size_t i = 0; i < probe; ++i) {
        // Training-path statistics (LayerNorm active) so the loss scale
        // matches what the optimizer will actually see.
        Field u =
            model_.forwardField(model_.encode(source_->image(i)), true);
        mean_intensity += u.intensity().mean();
        mean_mask += source_->mask(i).mean();
    }
    mean_intensity /= static_cast<Real>(probe);
    mean_mask /= static_cast<Real>(probe);
    if (mean_mask > 0)
        mask_mean_ = mean_mask;
    // Aim the mean training-path intensity at the mask brightness.
    if (mean_intensity > 0)
        intensity_scale_ = mask_mean_ / mean_intensity;
}

SampleResult
SegmentationTask::sampleStep(DonnModel &model, std::size_t index)
{
    SampleResult result;
    PropagationWorkspace &workspace = PropagationWorkspace::threadLocal();
    const Grid grid = model.spec().grid();
    WorkspaceField u(workspace, grid.n, grid.n);
    model.encodeInto(source_->image(index), u.get());
    model.forwardFieldInPlace(u.get(), true, workspace);
    const RealMap *target = &source_->mask(index);
    RealMap resized;
    if (target->rows() != grid.n) {
        resized = resizeBilinear(*target, grid.n, grid.n);
        target = &resized;
    }
    // Overwrites u with the Wirtinger loss gradient, then unwinds.
    result.loss =
        intensityMseLossInPlace(u.get(), *target, intensity_scale_);
    model.backwardFieldInPlace(u.get(), workspace);
    return result;
}

TaskMetrics
SegmentationTask::evaluate()
{
    TaskMetrics metrics;
    if (test_ != nullptr)
        metrics.primary = evaluateIou(*test_);
    return metrics;
}

RealMap
SegmentationTask::predictMask(const RealMap &image)
{
    Field u = model_.forwardField(model_.encode(image), false);
    RealMap intensity = u.intensity();
    // Auto-exposure: match the mean prediction brightness to the
    // expected mask brightness (LayerNorm is training-only, so the raw
    // inference intensity scale is otherwise arbitrary).
    Real mean = intensity.mean();
    if (mean > 0)
        intensity *= mask_mean_ / mean;
    return intensity;
}

Real
SegmentationTask::evaluateIou(const SegDataset &data, Real threshold)
{
    if (data.size() == 0)
        return 0;
    const Grid grid = model_.spec().grid();
    Real total = 0;
    std::vector<Real> sorted;
    for (std::size_t i = 0; i < data.size(); ++i) {
        RealMap pred = predictMask(data.images[i]);
        RealMap target = (data.masks[i].rows() == grid.n)
                             ? data.masks[i]
                             : resizeBilinear(data.masks[i], grid.n, grid.n);
        // Predictions are uncalibrated analog intensities; binarize at
        // the quantile matching the target's positive fraction so IoU
        // scores spatial agreement, not exposure.
        Real positive_frac =
            target.sum() / static_cast<Real>(target.size());
        sorted.assign(pred.raw().begin(), pred.raw().end());
        std::sort(sorted.begin(), sorted.end());
        std::size_t cut = static_cast<std::size_t>(
            std::min<Real>(sorted.size() - 1.0,
                           (1 - positive_frac) * sorted.size()));
        Real pred_threshold = sorted[cut];

        std::size_t inter = 0, uni = 0;
        for (std::size_t p = 0; p < pred.size(); ++p) {
            bool a = pred[p] >= pred_threshold;
            bool b = target[p] >= threshold;
            inter += (a && b) ? 1 : 0;
            uni += (a || b) ? 1 : 0;
        }
        total += uni == 0 ? 1.0 : static_cast<Real>(inter) / uni;
    }
    return total / data.size();
}

Real
SegmentationTask::evaluateMse(const SegDataset &data)
{
    if (data.size() == 0)
        return 0;
    const Grid grid = model_.spec().grid();
    Real total = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        RealMap pred = predictMask(data.images[i]);
        RealMap target = (data.masks[i].rows() == grid.n)
                             ? data.masks[i]
                             : resizeBilinear(data.masks[i], grid.n, grid.n);
        Real err = 0;
        for (std::size_t p = 0; p < pred.size(); ++p) {
            Real d = pred[p] - target[p];
            err += d * d;
        }
        total += err / pred.size();
    }
    return total / data.size();
}

// --------------------------------------------------------------------------
// RgbTask
// --------------------------------------------------------------------------

RgbTask::Replica::Replica(const MultiChannelDonn &source, uint64_t seed)
    : model(source.clone()), rng(seed)
{
    for (std::size_t ch = 0; ch < model.numChannels(); ++ch)
        bindModelNoiseRng(model.channel(ch), &rng);
    params = model.params();
}

RgbTask::RgbTask(MultiChannelDonn &model, const RgbDataset &train,
                 const RgbDataset *test)
    : model_(model),
      own_source_(std::make_unique<InMemoryRgbSource>(train)),
      source_(own_source_.get()), test_(test)
{}

RgbTask::RgbTask(MultiChannelDonn &model, RgbSource &train,
                 const RgbDataset *test)
    : model_(model), source_(&train), test_(test)
{}

void
RgbTask::calibrate()
{
    std::size_t probe = config_.calib_probe > 0 ? config_.calib_probe : 8;
    probe = std::min(probe, source_->size());
    if (probe == 0)
        return;
    source_->stageIndices(0, probe);
    Real mean_top = 0;
    for (std::size_t ch = 0; ch < model_.numChannels(); ++ch)
        model_.channel(ch).detector().setAmpFactor(1.0);
    for (std::size_t i = 0; i < probe; ++i) {
        std::vector<Real> logits =
            model_.forwardLogits(model_.encode(source_->image(i)), false);
        mean_top += *std::max_element(logits.begin(), logits.end());
    }
    mean_top /= static_cast<Real>(probe);
    if (mean_top > 0) {
        Real amp = config_.calib_target / mean_top;
        for (std::size_t ch = 0; ch < model_.numChannels(); ++ch)
            model_.channel(ch).detector().setAmpFactor(amp);
    }
}

SampleResult
RgbTask::sampleStep(MultiChannelDonn &model, std::size_t index)
{
    SampleResult result;
    PropagationWorkspace &workspace = PropagationWorkspace::threadLocal();
    const int label = source_->label(index);
    std::vector<Real> logits =
        model.trainForwardLogitsInPlace(source_->image(index), workspace);
    LossResult loss = classificationLoss(config_.loss, logits, label);
    result.loss = loss.value;
    int pred = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    result.hit = pred == label;
    model.backwardFromLogitsInPlace(loss.dlogits, workspace);
    return result;
}

SampleResult
RgbTask::trainSample(std::size_t index)
{
    return sampleStep(model_, index);
}

void
RgbTask::buildReplicas(const std::vector<uint64_t> &seeds)
{
    replicas_.clear();
    replicas_.reserve(seeds.size());
    for (uint64_t seed : seeds)
        replicas_.push_back(std::make_unique<Replica>(model_, seed));
}

std::vector<ParamView>
RgbTask::replicaParams(std::size_t r)
{
    return replicas_[r]->params;
}

void
RgbTask::zeroReplicaGrad(std::size_t r)
{
    replicas_[r]->model.zeroGrad();
}

SampleResult
RgbTask::trainSampleOn(std::size_t r, std::size_t index)
{
    return sampleStep(replicas_[r]->model, index);
}

void
RgbTask::syncReplicas()
{
    std::vector<ParamView> main_params = model_.params();
    for (auto &replica : replicas_) {
        for (std::size_t p = 0; p < main_params.size(); ++p)
            *replica->params[p].value = *main_params[p].value;
        for (std::size_t ch = 0; ch < model_.numChannels(); ++ch)
            replica->model.channel(ch).detector().setAmpFactor(
                model_.channel(ch).detector().ampFactor());
    }
}

void
RgbTask::setTau(Real tau)
{
    for (std::size_t ch = 0; ch < model_.numChannels(); ++ch)
        applyModelTau(model_.channel(ch), tau);
}

TaskMetrics
RgbTask::evaluate()
{
    TaskMetrics metrics;
    if (test_ == nullptr || test_->size() == 0)
        return metrics;
    const RgbDataset &data = *test_;
    std::vector<std::uint8_t> hit1(data.size(), 0);
    std::vector<std::uint8_t> hit3(data.size(), 0);
    ThreadPool::global().parallelFor(data.size(), [&](std::size_t i) {
        std::vector<Real> logits =
            model_.inferLogits(model_.encode(data.images[i]));
        hit1[i] = topKContains(logits, data.labels[i], 1) ? 1 : 0;
        hit3[i] = topKContains(logits, data.labels[i], 3) ? 1 : 0;
    });
    std::size_t top1 = 0, top3 = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        top1 += hit1[i];
        top3 += hit3[i];
    }
    metrics.primary = static_cast<Real>(top1) / data.size();
    metrics.top3 = static_cast<Real>(top3) / data.size();
    return metrics;
}

bool
RgbTask::save(const std::string &path) const
{
    return model_.save(path);
}

// --------------------------------------------------------------------------
// Evaluation utilities
// --------------------------------------------------------------------------

Real
evaluateAccuracy(DonnModel &model, const ClassDataset &data, Real noise_frac,
                 Rng *rng)
{
    return evaluateWithConfidence(model, data, noise_frac, rng).accuracy;
}

EvalResult
evaluateWithConfidence(DonnModel &model, const ClassDataset &data,
                       Real noise_frac, Rng *rng)
{
    EvalResult result;
    if (data.size() == 0)
        return result;
    const bool noisy = noise_frac > 0 && rng != nullptr;

    std::vector<std::uint8_t> hit(data.size(), 0);
    std::vector<Real> conf(data.size(), 0);
    auto evalOne = [&](std::size_t i) {
        Field u = model.inferField(model.encode(data.images[i]));
        std::vector<Real> logits =
            noisy ? model.detector().readoutNoisy(u, noise_frac, rng)
                  : model.detector().readout(u);
        int pred = static_cast<int>(
            std::max_element(logits.begin(), logits.end()) - logits.begin());
        hit[i] = pred == data.labels[i] ? 1 : 0;
        conf[i] = predictionConfidence(logits);
    };

    if (noisy) {
        // The shared rng makes noisy readout order-dependent; keep serial.
        for (std::size_t i = 0; i < data.size(); ++i)
            evalOne(i);
    } else {
        ThreadPool::global().parallelFor(data.size(), evalOne);
    }

    // Accumulate in index order so the result is independent of scheduling.
    std::size_t correct = 0;
    Real confidence = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        correct += hit[i];
        confidence += conf[i];
    }
    result.accuracy = static_cast<Real>(correct) / data.size();
    result.confidence = confidence / data.size();
    return result;
}

Real
evaluateTopK(DonnModel &model, const ClassDataset &data, std::size_t k)
{
    if (data.size() == 0)
        return 0;
    std::vector<std::uint8_t> hit(data.size(), 0);
    ThreadPool::global().parallelFor(data.size(), [&](std::size_t i) {
        std::vector<Real> logits =
            model.detector().readout(
                model.inferField(model.encode(data.images[i])));
        hit[i] = topKContains(logits, data.labels[i], k) ? 1 : 0;
    });
    std::size_t hits = 0;
    for (std::size_t i = 0; i < data.size(); ++i)
        hits += hit[i];
    return static_cast<Real>(hits) / data.size();
}

Real
evaluateRgbAccuracy(MultiChannelDonn &model, const RgbDataset &data)
{
    return evaluateRgbTopK(model, data, 1);
}

Real
evaluateRgbTopK(MultiChannelDonn &model, const RgbDataset &data,
                std::size_t k)
{
    if (data.size() == 0)
        return 0;
    std::vector<std::uint8_t> hit(data.size(), 0);
    ThreadPool::global().parallelFor(data.size(), [&](std::size_t i) {
        std::vector<Real> logits =
            model.inferLogits(model.encode(data.images[i]));
        hit[i] = topKContains(logits, data.labels[i], k) ? 1 : 0;
    });
    std::size_t hits = 0;
    for (std::size_t i = 0; i < data.size(); ++i)
        hits += hit[i];
    return static_cast<Real>(hits) / data.size();
}

} // namespace lightridge
