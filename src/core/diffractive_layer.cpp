#include "core/diffractive_layer.hpp"

#include <cmath>

namespace lightridge {

DiffractiveLayer::DiffractiveLayer(
    std::shared_ptr<const Propagator> propagator, Real gamma, Rng *rng)
    : propagator_(std::move(propagator)), gamma_(gamma)
{
    const std::size_t n = propagator_->config().grid.n;
    phase_ = RealMap(n, n, 0.0);
    phase_grad_ = RealMap(n, n, 0.0);
    if (rng != nullptr) {
        // Full-range random phases: the standard DONN initialization
        // (phase is cyclic, so there is no "small init" advantage, and
        // full-range masks exercise the device's whole response curve).
        for (std::size_t i = 0; i < phase_.size(); ++i)
            phase_[i] = rng->uniform(0.0, kTwoPi);
    }
}

Field
DiffractiveLayer::forward(const Field &in, bool training)
{
    if (!training)
        return infer(in);
    Field diffracted = propagator_->forward(in);
    Field out(diffracted.rows(), diffracted.cols());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = gamma_ * diffracted[i] * std::polar(Real(1), phase_[i]);
    cached_diffracted_ = std::move(diffracted);
    cached_out_ = out;
    return out;
}

Field
DiffractiveLayer::infer(const Field &in) const
{
    Field diffracted = propagator_->forward(in);
    Field out(diffracted.rows(), diffracted.cols());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = gamma_ * diffracted[i] * std::polar(Real(1), phase_[i]);
    return out;
}

LayerPtr
DiffractiveLayer::clone() const
{
    return std::make_unique<DiffractiveLayer>(*this);
}

Field
DiffractiveLayer::backward(const Field &grad_out)
{
    // dL/dphi = Re(conj(G_out) * j * U_out): the phase rotates the output
    // in the complex plane, so its gradient is the tangential component.
    for (std::size_t i = 0; i < phase_grad_.size(); ++i) {
        Complex tangent = kJ * cached_out_[i];
        phase_grad_[i] += std::real(std::conj(grad_out[i]) * tangent);
    }

    // G before modulation: G_diff = G_out * conj(gamma * e^{j phi}).
    Field grad_diff(grad_out.rows(), grad_out.cols());
    for (std::size_t i = 0; i < grad_diff.size(); ++i)
        grad_diff[i] =
            grad_out[i] * gamma_ * std::polar(Real(1), -phase_[i]);

    return propagator_->adjoint(grad_diff);
}

std::vector<ParamView>
DiffractiveLayer::params()
{
    return {ParamView{"phase", &phase_.raw(), &phase_grad_.raw()}};
}

Json
DiffractiveLayer::toJson() const
{
    Json j;
    j["kind"] = Json(kind());
    j["gamma"] = Json(gamma_);
    Json phases;
    for (std::size_t i = 0; i < phase_.size(); ++i)
        phases.push(Json(phase_[i]));
    j["phase"] = std::move(phases);
    return j;
}

std::unique_ptr<DiffractiveLayer>
DiffractiveLayer::fromJson(const Json &j,
                           std::shared_ptr<const Propagator> propagator)
{
    auto layer = std::make_unique<DiffractiveLayer>(
        std::move(propagator), j.numberOr("gamma", 1.0));
    const auto &phases = j.at("phase").asArray();
    if (phases.size() != layer->phase_.size())
        throw JsonError("diffractive layer phase size mismatch");
    for (std::size_t i = 0; i < phases.size(); ++i)
        layer->phase_[i] = phases[i].asNumber();
    return layer;
}

} // namespace lightridge
