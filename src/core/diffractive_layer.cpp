#include "core/diffractive_layer.hpp"

#include <cmath>
#include <cstring>

#include "optics/perturbation.hpp"

namespace lightridge {

DiffractiveLayer::DiffractiveLayer(
    std::shared_ptr<const Propagator> propagator, Real gamma, Rng *rng)
    : propagator_(std::move(propagator)), gamma_(gamma)
{
    const std::size_t n = propagator_->config().grid.n;
    phase_ = RealMap(n, n, 0.0);
    phase_grad_ = RealMap(n, n, 0.0);
    if (rng != nullptr) {
        // Full-range random phases: the standard DONN initialization
        // (phase is cyclic, so there is no "small init" advantage, and
        // full-range masks exercise the device's whole response curve).
        for (std::size_t i = 0; i < phase_.size(); ++i)
            phase_[i] = rng->uniform(0.0, kTwoPi);
    }
}

// The published table is immutable, so sharing the pointer is safe; the
// mutex is per-instance and starts fresh. Initializing in the member
// list (via publishedModulation(), which locks the source instance)
// keeps the constructor free of guarded-member writes.
DiffractiveLayer::DiffractiveLayer(const DiffractiveLayer &other)
    : propagator_(other.propagator_), gamma_(other.gamma_),
      phase_(other.phase_), phase_grad_(other.phase_grad_),
      modulation_(other.modulation_),
      modulation_conj_(other.modulation_conj_),
      modulation_phase_(other.modulation_phase_),
      infer_modulation_(other.publishedModulation()),
      cached_diffracted_(other.cached_diffracted_),
      cached_out_(other.cached_out_)
{}

std::shared_ptr<const DiffractiveLayer::InferModulation>
DiffractiveLayer::publishedModulation() const
{
    MutexLock lock(infer_cache_mutex_);
    return infer_modulation_;
}

Field
DiffractiveLayer::forward(const Field &in, bool training)
{
    Field u = in;
    forwardInPlace(u, training, PropagationWorkspace::threadLocal());
    return u;
}

Field
DiffractiveLayer::infer(const Field &in) const
{
    Field u = in;
    inferInPlace(u, PropagationWorkspace::threadLocal());
    return u;
}

void
DiffractiveLayer::ensureModulation()
{
    const std::size_t size = phase_.size();
    if (modulation_.size() == size &&
        std::memcmp(modulation_phase_.data(), phase_.data(),
                    size * sizeof(Real)) == 0)
        return;
    ensureFieldShape(modulation_, phase_.rows(), phase_.cols());
    ensureFieldShape(modulation_conj_, phase_.rows(), phase_.cols());
    for (std::size_t i = 0; i < size; ++i) {
        modulation_[i] = std::polar(Real(1), phase_[i]);
        modulation_conj_[i] = std::polar(Real(1), -phase_[i]);
    }
    modulation_phase_ = phase_;
}

void
DiffractiveLayer::forwardInPlace(Field &u, bool training,
                                 PropagationWorkspace &workspace)
{
    if (!training) {
        inferInPlace(u, workspace);
        return;
    }
    ensureModulation();
    const LayerPerturbation *p = perturb_;
    propagator_->forwardInto(u, cached_diffracted_, workspace,
                             p ? &p->hop : nullptr);
    ensureFieldShape(cached_out_, cached_diffracted_.rows(),
                     cached_diffracted_.cols());
    ensureFieldShape(u, cached_diffracted_.rows(),
                     cached_diffracted_.cols());
    if (p && p->has_noise) {
        // The phase screen multiplies into cached_out_ as well, so the
        // phase-gradient identity dL/dphi = Re(conj(G) * j * U_out) in
        // backwardInPlace() holds unchanged under noise.
        for (std::size_t i = 0; i < cached_out_.size(); ++i) {
            Complex v = gamma_ * cached_diffracted_[i] * modulation_[i] *
                        p->noise[i];
            cached_out_[i] = v;
            u[i] = v;
        }
        return;
    }
    for (std::size_t i = 0; i < cached_out_.size(); ++i) {
        Complex v = gamma_ * cached_diffracted_[i] * modulation_[i];
        cached_out_[i] = v;
        u[i] = v;
    }
}

std::shared_ptr<const DiffractiveLayer::InferModulation>
DiffractiveLayer::inferModulation() const
{
    MutexLock lock(infer_cache_mutex_);
    const std::size_t size = phase_.size();
    if (infer_modulation_ && infer_modulation_->table.size() == size &&
        std::memcmp(infer_modulation_->phase.data(), phase_.data(),
                    size * sizeof(Real)) == 0)
        return infer_modulation_;
    auto fresh = std::make_shared<InferModulation>();
    fresh->table = Field(phase_.rows(), phase_.cols());
    for (std::size_t i = 0; i < size; ++i)
        fresh->table[i] = std::polar(Real(1), phase_[i]);
    fresh->phase = phase_;
    infer_modulation_ = fresh;
    return fresh;
}

void
DiffractiveLayer::inferInPlace(Field &u,
                               PropagationWorkspace &workspace) const
{
    std::shared_ptr<const InferModulation> mod = inferModulation();
    const LayerPerturbation *p = perturb_;
    propagator_->forwardInto(u, u, workspace, p ? &p->hop : nullptr);
    const Field &table = mod->table;
    if (p && p->has_noise) {
        for (std::size_t i = 0; i < u.size(); ++i)
            u[i] = gamma_ * u[i] * table[i] * p->noise[i];
        return;
    }
    for (std::size_t i = 0; i < u.size(); ++i)
        u[i] = gamma_ * u[i] * table[i];
}

LayerPtr
DiffractiveLayer::clone() const
{
    return std::make_unique<DiffractiveLayer>(*this);
}

Field
DiffractiveLayer::backward(const Field &grad_out)
{
    Field g = grad_out;
    backwardInPlace(g, PropagationWorkspace::threadLocal());
    return g;
}

void
DiffractiveLayer::backwardInPlace(Field &g, PropagationWorkspace &workspace)
{
    ensureModulation();
    // dL/dphi = Re(conj(G_out) * j * U_out): the phase rotates the output
    // in the complex plane, so its gradient is the tangential component.
    for (std::size_t i = 0; i < phase_grad_.size(); ++i) {
        Complex tangent = kJ * cached_out_[i];
        phase_grad_[i] += std::real(std::conj(g[i]) * tangent);
    }

    const LayerPerturbation *p = perturb_;
    // G before modulation: G_diff = G_out * conj(gamma * e^{j phi}),
    // times conj(e^{j eps}) when a phase screen was applied.
    if (p && p->has_noise) {
        for (std::size_t i = 0; i < g.size(); ++i)
            g[i] = g[i] * gamma_ * modulation_conj_[i] * p->noise_conj[i];
    } else {
        for (std::size_t i = 0; i < g.size(); ++i)
            g[i] = g[i] * gamma_ * modulation_conj_[i];
    }

    propagator_->adjointInto(g, g, workspace, p ? &p->hop : nullptr);
}

std::vector<ParamView>
DiffractiveLayer::params()
{
    return {ParamView{"phase", &phase_.raw(), &phase_grad_.raw()}};
}

Json
DiffractiveLayer::toJson() const
{
    Json j;
    j["kind"] = Json(kind());
    j["gamma"] = Json(gamma_);
    Json phases;
    for (std::size_t i = 0; i < phase_.size(); ++i)
        phases.push(Json(phase_[i]));
    j["phase"] = std::move(phases);
    return j;
}

std::unique_ptr<DiffractiveLayer>
DiffractiveLayer::fromJson(const Json &j,
                           std::shared_ptr<const Propagator> propagator)
{
    auto layer = std::make_unique<DiffractiveLayer>(
        std::move(propagator), j.numberOr("gamma", 1.0));
    const auto &phases = j.at("phase").asArray();
    if (phases.size() != layer->phase_.size())
        throw JsonError("diffractive layer phase size mismatch");
    for (std::size_t i = 0; i < phases.size(); ++i)
        layer->phase_[i] = phases[i].asNumber();
    return layer;
}

} // namespace lightridge
