/**
 * @file
 * First-order optimizers over ParamView buffers (lr.train.utils).
 *
 * The paper trains DONNs with Adam (lr = 0.5 on the physical prototype);
 * plain SGD with momentum is provided for ablations.
 */
#pragma once

#include <memory>
#include <vector>

#include "core/layer.hpp"

namespace lightridge {

/** Base optimizer bound to a set of parameter views. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /** Bind the parameter set (resets internal state). */
    void attach(std::vector<ParamView> params);

    /** Apply one update from the accumulated gradients. */
    virtual void step() = 0;

    /** Clear all bound gradients. */
    void zeroGrad();

  protected:
    virtual void onAttach() {}
    std::vector<ParamView> params_;
};

/** Stochastic gradient descent with classical momentum. */
class Sgd : public Optimizer
{
  public:
    explicit Sgd(Real lr, Real momentum = 0.0)
        : lr_(lr), momentum_(momentum)
    {}
    void step() override;

  private:
    void onAttach() override;
    Real lr_;
    Real momentum_;
    std::vector<std::vector<Real>> velocity_;
};

/** Adam optimizer [Kingma & Ba 2014]. */
class Adam : public Optimizer
{
  public:
    explicit Adam(Real lr, Real beta1 = 0.9, Real beta2 = 0.999,
                  Real eps = 1e-8)
        : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps)
    {}
    void step() override;

  private:
    void onAttach() override;
    Real lr_;
    Real beta1_;
    Real beta2_;
    Real eps_;
    long t_ = 0;
    std::vector<std::vector<Real>> m_;
    std::vector<std::vector<Real>> v_;
};

} // namespace lightridge
