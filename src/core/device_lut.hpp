/**
 * @file
 * Device modulation look-up table shared between the codesign layer and
 * the hardware deployment stack.
 *
 * Real optical devices (SLMs, 3-D printed masks) provide a finite set of
 * realizable complex modulation states; an entry m_k = a_k * exp(j phi_k)
 * couples the achievable amplitude and phase (paper Section 2.2: twisted
 * nematic SLMs modulate amplitude alongside phase). The codesign layer
 * trains directly over these states (Section 3.2).
 */
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "utils/types.hpp"

namespace lightridge {

/** Finite set of realizable complex modulation states of a device. */
struct DeviceLut
{
    std::vector<Complex> levels;

    std::size_t size() const { return levels.size(); }

    /** Ideal phase-only device with K uniform levels covering [0, 2*pi). */
    static DeviceLut
    idealPhase(std::size_t k)
    {
        if (k == 0)
            throw std::invalid_argument("DeviceLut: zero levels");
        DeviceLut lut;
        lut.levels.resize(k);
        for (std::size_t i = 0; i < k; ++i) {
            Real phi = kTwoPi * static_cast<Real>(i) / static_cast<Real>(k);
            lut.levels[i] = std::polar(Real(1), phi);
        }
        return lut;
    }

    /** Index of the level whose phase is closest to phi (mod 2*pi). */
    std::size_t
    nearestPhase(Real phi) const
    {
        std::size_t best = 0;
        Real best_dist = 1e30;
        for (std::size_t i = 0; i < levels.size(); ++i) {
            Real d = std::arg(levels[i]) - phi;
            while (d > kPi)
                d -= kTwoPi;
            while (d < -kPi)
                d += kTwoPi;
            d = std::abs(d);
            if (d < best_dist) {
                best_dist = d;
                best = i;
            }
        }
        return best;
    }
};

} // namespace lightridge
