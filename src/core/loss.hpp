/**
 * @file
 * Training losses (Section 2.1).
 *
 * Classification uses the paper's objective L = ||softmax(I) - t||^2 over
 * detector-region intensities I and a one-hot target t (softmax-MSE);
 * cross-entropy is provided as an alternative. Image-to-image tasks
 * (Section 5.6.2 segmentation) use a per-pixel intensity MSE computed
 * directly on the output field.
 */
#pragma once

#include <vector>

#include "tensor/field.hpp"
#include "utils/types.hpp"

namespace lightridge {

/** Which classification loss the trainer applies. */
enum class LossKind { SoftmaxMse, CrossEntropy };

/** Value + gradient with respect to the detector logits. */
struct LossResult
{
    Real value = 0;
    std::vector<Real> dlogits;
};

/** Numerically stable softmax. */
std::vector<Real> softmax(const std::vector<Real> &logits);

/** Paper loss: L = || softmax(I) - onehot(target) ||^2. */
LossResult softmaxMseLoss(const std::vector<Real> &logits, int target);

/** Standard cross-entropy with softmax. */
LossResult crossEntropyLoss(const std::vector<Real> &logits, int target);

/** Dispatch on LossKind. */
LossResult classificationLoss(LossKind kind, const std::vector<Real> &logits,
                              int target);

/** Value + Wirtinger gradient with respect to the output field. */
struct FieldLossResult
{
    Real value = 0;
    Field grad;
};

/**
 * Per-pixel MSE between scale*|U|^2 and a target map:
 * L = mean((scale*|U|^2 - t)^2). Used for all-optical segmentation.
 */
FieldLossResult intensityMseLoss(const Field &u, const RealMap &target,
                                 Real scale);

/**
 * In-place variant for the zero-allocation training pipeline: overwrites
 * `u` with the Wirtinger gradient of the loss and returns the loss value.
 * Bitwise-identical to intensityMseLoss().
 */
Real intensityMseLossInPlace(Field &u, const RealMap &target, Real scale);

/**
 * Prediction confidence: softmax probability assigned to the argmax class.
 * Figure 7 reports this as a function of DONN depth.
 */
Real predictionConfidence(const std::vector<Real> &logits);

} // namespace lightridge
