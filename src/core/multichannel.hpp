/**
 * @file
 * Multi-channel RGB-DONN architecture (Section 5.6.1, Figure 12).
 *
 * The input RGB image is split into three grayscale channel images; a
 * beam splitter feeds three parallel optical stacks; their output beams
 * project onto one shared detector where intensities merge (incoherent
 * sum) for the final prediction. All channels train against the same
 * shared loss.
 */
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "core/model.hpp"

namespace lightridge {

/** Three parallel DONN stacks merging on one detector. */
class MultiChannelDonn
{
  public:
    /**
     * @param channels per-channel stacks (same spec); detector geometry
     *        is taken from the first channel's detector.
     */
    explicit MultiChannelDonn(
        std::vector<std::unique_ptr<DonnModel>> channels);

    std::size_t numChannels() const { return channels_.size(); }
    DonnModel &channel(std::size_t i) { return *channels_[i]; }
    const DonnModel &channel(std::size_t i) const { return *channels_[i]; }

    /** Encode one RGB sample into per-channel input fields. */
    std::vector<Field> encode(const std::array<RealMap, 3> &rgb) const;

    /** Merged detector logits. Caches per-channel fields when training. */
    std::vector<Real> forwardLogits(const std::vector<Field> &inputs,
                                    bool training = false);

    /**
     * In-place training forward for the zero-allocation pipeline:
     * encodes each channel directly into its persistent activation
     * buffer, propagates in place, and reads the merged logits — no
     * per-sample Field allocations in steady state. Numerically
     * identical to encode() + forwardLogits(inputs, true).
     */
    std::vector<Real>
    trainForwardLogitsInPlace(const std::array<RealMap, 3> &rgb,
                              PropagationWorkspace &workspace);

    /** In-place counterpart of backwardFromLogits(). */
    void backwardFromLogitsInPlace(const std::vector<Real> &dlogits,
                                   PropagationWorkspace &workspace);

    /**
     * Thread-safe inference logits: numerically identical to
     * forwardLogits(inputs, false) but const and cache-free, so
     * independent samples can be evaluated concurrently.
     */
    std::vector<Real> inferLogits(const std::vector<Field> &inputs) const;

    /** Argmax class. */
    int predict(const std::vector<Field> &inputs);

    /** Backprop the shared dL/dlogits into every channel. */
    void backwardFromLogits(const std::vector<Real> &dlogits);

    std::vector<ParamView> params();
    void zeroGrad();

    /**
     * Deep copy: every channel stack is cloned (parameters and gradients
     * copied, propagators shared). Replicas train independently; the
     * data-parallel RgbTask builds one per worker.
     */
    MultiChannelDonn clone() const;

    /** Serialize every channel stack. */
    Json toJson() const;

    /** Reconstruct from toJson() output. */
    static MultiChannelDonn fromJson(const Json &j);

    /** Save/load helpers. */
    bool save(const std::string &path) const;
    static MultiChannelDonn load(const std::string &path);

  private:
    std::vector<std::unique_ptr<DonnModel>> channels_;
    std::vector<Field> cached_fields_;
};

/** Top-k accuracy helper for Table 5 (top-1/3/5). */
bool topKContains(const std::vector<Real> &logits, int target,
                  std::size_t k);

} // namespace lightridge
