/**
 * @file
 * Optical/photon detector plane (lr.layers.detector).
 *
 * The detector is the analog-to-digital interface of a DONN (Section 2):
 * it captures the light intensity pattern and integrates it over
 * per-class regions; the region sums act as the pre-softmax logits of the
 * classifier. Region geometry is configurable exactly like the paper's
 * x_loc/y_loc/det_size API, with an evenly spaced default layout.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/field.hpp"
#include "utils/rng.hpp"
#include "utils/types.hpp"

namespace lightridge {

/** Axis-aligned rectangular detector region (row/col origin + size). */
struct DetectorRegion
{
    std::size_t r0 = 0;
    std::size_t c0 = 0;
    std::size_t h = 0;
    std::size_t w = 0;
};

/** How region intensities are turned into logits. */
enum class DetectorMode
{
    /** Plain region-integrated intensity (the paper's default readout). */
    Intensity,
    /**
     * Class-specific differential detection (Li et al., arXiv:1906.03417):
     * each class owns a positive and a negative region, and the logit is
     * the normalized intensity difference
     *   amp * (P - N) / (P + N + eps),
     * which cancels global illumination power and doubles the usable
     * dynamic range of the readout.
     */
    Differential,
};

/** Per-class intensity-integrating readout plane. */
class DetectorPlane
{
  public:
    DetectorPlane() = default;

    /**
     * @param regions one region per class
     * @param amp_factor scale applied to region sums before the loss
     *        (the paper's trainable "amplitude factor" calibration knob)
     */
    explicit DetectorPlane(std::vector<DetectorRegion> regions,
                           Real amp_factor = 1.0);

    /**
     * Differential-detection plane: one positive and one negative region
     * per class (the vectors must have equal size). Logits are normalized
     * intensity differences; amp_factor scales the normalized value so
     * calibration still controls the softmax operating point.
     */
    DetectorPlane(std::vector<DetectorRegion> regions,
                  std::vector<DetectorRegion> neg_regions,
                  Real amp_factor = 1.0);

    std::size_t numClasses() const { return regions_.size(); }
    const std::vector<DetectorRegion> &regions() const { return regions_; }

    DetectorMode mode() const { return mode_; }
    bool differential() const
    {
        return mode_ == DetectorMode::Differential;
    }

    /** Negative regions (empty unless differential). */
    const std::vector<DetectorRegion> &negRegions() const
    {
        return neg_regions_;
    }

    Real ampFactor() const { return amp_factor_; }
    void setAmpFactor(Real a) { amp_factor_ = a; }

    /** Pure readout: region-integrated intensities times amp_factor. */
    std::vector<Real> readout(const Field &u) const;

    /**
     * Readout from an already-digitized intensity map (e.g. the CMOS
     * detector model's ADC output in the hardware deployment path).
     */
    std::vector<Real> readoutFromIntensity(const RealMap &intensity) const;

    /**
     * Readout with uniform random intensity noise injected per pixel with
     * upper bound noise_frac * max intensity (the Fig. 7 robustness test).
     */
    std::vector<Real> readoutNoisy(const Field &u, Real noise_frac,
                                   Rng *rng) const;

    /** Caching forward for training. */
    std::vector<Real> forward(const Field &u);

    /** Backprop dL/dlogits to a Wirtinger field gradient. */
    Field backward(const std::vector<Real> &dlogits) const;

    /**
     * Same as backward() but against an externally provided field (used by
     * the multi-channel architecture where several stacks share one
     * detector).
     */
    Field backwardFor(const Field &u,
                      const std::vector<Real> &dlogits) const;

    /**
     * In-place backward: writes the Wirtinger gradient into `grad`
     * (resized at most once; allocation-free in steady state). `grad`
     * must not alias the cached forward field.
     */
    void backwardInto(const std::vector<Real> &dlogits, Field &grad) const;

    /** In-place backwardFor(); `grad` must not alias `u`. */
    void backwardForInto(const Field &u, const std::vector<Real> &dlogits,
                         Field &grad) const;

    /**
     * Evenly spaced grid layout: num_classes square regions of det_size
     * pixels arranged in near-square rows across an n-by-n plane, mirroring
     * the paper's "10 pre-defined detector regions placed evenly".
     */
    static std::vector<DetectorRegion>
    gridLayout(std::size_t n, std::size_t num_classes, std::size_t det_size);

    /** Positive/negative region pair lists for differential detection:
     *  2*num_classes evenly spaced regions, alternating pos/neg so each
     *  class's pair sits adjacent on the plane. */
    static std::pair<std::vector<DetectorRegion>,
                     std::vector<DetectorRegion>>
    differentialGridLayout(std::size_t n, std::size_t num_classes,
                           std::size_t det_size);

  private:
    std::vector<DetectorRegion> regions_;
    std::vector<DetectorRegion> neg_regions_;
    DetectorMode mode_ = DetectorMode::Intensity;
    Real amp_factor_ = 1.0;
    Field cached_u_;
};

/** Denominator guard of the normalized differential readout. */
inline constexpr Real kDifferentialEps = 1e-12;

} // namespace lightridge
