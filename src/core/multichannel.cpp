#include "core/multichannel.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace lightridge {

MultiChannelDonn::MultiChannelDonn(
    std::vector<std::unique_ptr<DonnModel>> channels)
    : channels_(std::move(channels))
{
    if (channels_.empty())
        throw std::invalid_argument("MultiChannelDonn: no channels");
    for (const auto &ch : channels_)
        if (ch->detector().numClasses() !=
            channels_[0]->detector().numClasses())
            throw std::invalid_argument(
                "MultiChannelDonn: detector class count mismatch");
}

std::vector<Field>
MultiChannelDonn::encode(const std::array<RealMap, 3> &rgb) const
{
    std::vector<Field> fields;
    fields.reserve(channels_.size());
    for (std::size_t ch = 0; ch < channels_.size(); ++ch)
        fields.push_back(channels_[ch]->encode(rgb[ch % 3]));
    return fields;
}

std::vector<Real>
MultiChannelDonn::forwardLogits(const std::vector<Field> &inputs,
                                bool training)
{
    if (inputs.size() != channels_.size())
        throw std::invalid_argument("MultiChannelDonn: input count mismatch");
    std::vector<Real> logits(channels_[0]->detector().numClasses(), 0.0);
    cached_fields_.clear();
    for (std::size_t ch = 0; ch < channels_.size(); ++ch) {
        Field u = channels_[ch]->forwardField(inputs[ch], training);
        std::vector<Real> part = channels_[ch]->detector().readout(u);
        for (std::size_t k = 0; k < logits.size(); ++k)
            logits[k] += part[k];
        if (training)
            cached_fields_.push_back(std::move(u));
    }
    return logits;
}

std::vector<Real>
MultiChannelDonn::trainForwardLogitsInPlace(
    const std::array<RealMap, 3> &rgb, PropagationWorkspace &workspace)
{
    std::vector<Real> logits(channels_[0]->detector().numClasses(), 0.0);
    cached_fields_.resize(channels_.size());
    for (std::size_t ch = 0; ch < channels_.size(); ++ch) {
        // The persistent activation cache doubles as the flow buffer:
        // encode into it, propagate in place, and leave it holding the
        // detector-plane field the backward pass needs.
        Field &u = cached_fields_[ch];
        channels_[ch]->encodeInto(rgb[ch % 3], u);
        channels_[ch]->forwardFieldInPlace(u, /*training=*/true,
                                           workspace);
        std::vector<Real> part = channels_[ch]->detector().readout(u);
        for (std::size_t k = 0; k < logits.size(); ++k)
            logits[k] += part[k];
    }
    return logits;
}

void
MultiChannelDonn::backwardFromLogitsInPlace(
    const std::vector<Real> &dlogits, PropagationWorkspace &workspace)
{
    if (cached_fields_.size() != channels_.size())
        throw std::logic_error("MultiChannelDonn: backward before forward");
    for (std::size_t ch = 0; ch < channels_.size(); ++ch) {
        const Field &u = cached_fields_[ch];
        WorkspaceField g(workspace, u.rows(), u.cols());
        channels_[ch]->detector().backwardForInto(u, dlogits, g.get());
        channels_[ch]->backwardFieldInPlace(g.get(), workspace);
    }
}

std::vector<Real>
MultiChannelDonn::inferLogits(const std::vector<Field> &inputs) const
{
    if (inputs.size() != channels_.size())
        throw std::invalid_argument("MultiChannelDonn: input count mismatch");
    std::vector<Real> logits(channels_[0]->detector().numClasses(), 0.0);
    for (std::size_t ch = 0; ch < channels_.size(); ++ch) {
        Field u = channels_[ch]->inferField(inputs[ch]);
        std::vector<Real> part = channels_[ch]->detector().readout(u);
        for (std::size_t k = 0; k < logits.size(); ++k)
            logits[k] += part[k];
    }
    return logits;
}

int
MultiChannelDonn::predict(const std::vector<Field> &inputs)
{
    std::vector<Real> logits = forwardLogits(inputs, false);
    return static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
}

void
MultiChannelDonn::backwardFromLogits(const std::vector<Real> &dlogits)
{
    if (cached_fields_.size() != channels_.size())
        throw std::logic_error("MultiChannelDonn: backward before forward");
    for (std::size_t ch = 0; ch < channels_.size(); ++ch) {
        Field g = channels_[ch]->detector().backwardFor(cached_fields_[ch],
                                                        dlogits);
        channels_[ch]->backwardField(g);
    }
}

std::vector<ParamView>
MultiChannelDonn::params()
{
    std::vector<ParamView> all;
    for (auto &ch : channels_)
        for (ParamView p : ch->params())
            all.push_back(p);
    return all;
}

void
MultiChannelDonn::zeroGrad()
{
    for (auto &ch : channels_)
        ch->zeroGrad();
}

MultiChannelDonn
MultiChannelDonn::clone() const
{
    std::vector<std::unique_ptr<DonnModel>> copies;
    copies.reserve(channels_.size());
    for (const auto &ch : channels_)
        copies.push_back(std::make_unique<DonnModel>(ch->clone()));
    return MultiChannelDonn(std::move(copies));
}

Json
MultiChannelDonn::toJson() const
{
    Json channels;
    for (const auto &ch : channels_)
        channels.push(ch->toJson());
    Json j;
    j["channels"] = std::move(channels);
    return j;
}

MultiChannelDonn
MultiChannelDonn::fromJson(const Json &j)
{
    std::vector<std::unique_ptr<DonnModel>> channels;
    for (const Json &cj : j.at("channels").asArray())
        channels.push_back(
            std::make_unique<DonnModel>(DonnModel::fromJson(cj)));
    return MultiChannelDonn(std::move(channels));
}

bool
MultiChannelDonn::save(const std::string &path) const
{
    Json j = toJson();
    addCheckpointHeader(j);
    return j.save(path);
}

MultiChannelDonn
MultiChannelDonn::load(const std::string &path)
{
    return fromJson(loadCheckpointJson(path));
}

bool
topKContains(const std::vector<Real> &logits, int target, std::size_t k)
{
    std::vector<std::size_t> order(logits.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::partial_sort(order.begin(),
                      order.begin() + std::min(k, order.size()), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          return logits[a] > logits[b];
                      });
    for (std::size_t i = 0; i < std::min(k, order.size()); ++i)
        if (static_cast<int>(order[i]) == target)
            return true;
    return false;
}

} // namespace lightridge
