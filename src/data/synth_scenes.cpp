#include "data/synth_scenes.hpp"

#include <cmath>

#include "data/raster.hpp"
#include "utils/rng.hpp"

namespace lightridge {

const char *
sceneClassName(int label)
{
    static const char *names[] = {"beach", "forest", "city",
                                  "mountain", "desert", "night"};
    return (label >= 0 && label < 6) ? names[label] : "?";
}

namespace {

/** Vertical gradient fill between two intensities. */
void
gradientFill(RealMap *ch, Real top, Real bottom, std::size_t r0,
             std::size_t r1)
{
    for (std::size_t r = r0; r < r1; ++r) {
        Real t = (r1 == r0) ? 0
                            : static_cast<Real>(r - r0) / (r1 - r0);
        Real v = top + t * (bottom - top);
        for (std::size_t c = 0; c < ch->cols(); ++c)
            (*ch)(r, c) = std::min<Real>(1.0, (*ch)(r, c) + v);
    }
}

} // namespace

std::array<RealMap, 3>
renderScene(int label, const SceneConfig &config, Rng *rng)
{
    const std::size_t n = config.image_size;
    std::array<RealMap, 3> rgb{RealMap(n, n, 0.0), RealMap(n, n, 0.0),
                               RealMap(n, n, 0.0)};
    RealMap &r_ch = rgb[0];
    RealMap &g_ch = rgb[1];
    RealMap &b_ch = rgb[2];
    const std::size_t horizon =
        static_cast<std::size_t>(n * rng->uniform(0.4, 0.6));

    switch (label) {
      case 0: { // beach: blue sky/sea + yellow sand + sun
        gradientFill(&b_ch, 0.9, 0.6, 0, horizon);
        gradientFill(&b_ch, 0.7, 0.5, horizon, n);
        gradientFill(&g_ch, 0.3, 0.5, horizon, n);
        std::size_t sand = horizon + (n - horizon) / 2;
        gradientFill(&r_ch, 0.8, 0.9, sand, n);
        gradientFill(&g_ch, 0.7, 0.8, sand, n);
        Real sun_c = rng->uniform(0.2, 0.8) * n;
        fillEllipse(&r_ch, n * 0.15, sun_c, n * 0.06, n * 0.06, 0.9);
        fillEllipse(&g_ch, n * 0.15, sun_c, n * 0.06, n * 0.06, 0.9);
        break;
      }
      case 1: { // forest: green vertical trunks + canopy
        gradientFill(&g_ch, 0.35, 0.55, 0, n);
        gradientFill(&b_ch, 0.15, 0.1, 0, n);
        int trees = static_cast<int>(rng->randint(5, 8));
        for (int t = 0; t < trees; ++t) {
            Real c = rng->uniform(0.05, 0.95) * n;
            Real w = rng->uniform(0.015, 0.03) * n;
            drawLine(&r_ch, n * 0.35, c, n * 0.95, c, w, 0.35);
            drawLine(&g_ch, n * 0.35, c, n * 0.95, c, w, 0.2);
            fillEllipse(&g_ch, n * rng->uniform(0.2, 0.35), c,
                        n * 0.12, n * 0.10, 0.5);
        }
        break;
      }
      case 2: { // city: gray building blocks with bright windows
        gradientFill(&b_ch, 0.45, 0.3, 0, horizon);
        gradientFill(&r_ch, 0.3, 0.2, 0, horizon);
        gradientFill(&g_ch, 0.35, 0.25, 0, horizon);
        int blocks = static_cast<int>(rng->randint(4, 6));
        for (int bIdx = 0; bIdx < blocks; ++bIdx) {
            int c0 = static_cast<int>(rng->uniform(0.0, 0.85) * n);
            int w = static_cast<int>(rng->uniform(0.1, 0.2) * n);
            int top = static_cast<int>(rng->uniform(0.15, 0.5) * n);
            for (auto *ch : {&r_ch, &g_ch, &b_ch})
                fillRect(ch, top, c0, static_cast<int>(n) - 1, c0 + w, 0.35);
            for (int wr = top + 2; wr < static_cast<int>(n) - 2; wr += 4)
                for (int wc = c0 + 2; wc < c0 + w - 1; wc += 4) {
                    fillRect(&r_ch, wr, wc, wr + 1, wc + 1, 0.5);
                    fillRect(&g_ch, wr, wc, wr + 1, wc + 1, 0.45);
                }
        }
        break;
      }
      case 3: { // mountain: blue sky + gray triangles + snow caps
        gradientFill(&b_ch, 0.8, 0.55, 0, n);
        gradientFill(&g_ch, 0.3, 0.35, 0, n);
        int peaks = static_cast<int>(rng->randint(2, 4));
        for (int p = 0; p < peaks; ++p) {
            Real apex_c = rng->uniform(0.1, 0.9) * n;
            Real apex_r = rng->uniform(0.2, 0.45) * n;
            Real base = rng->uniform(0.25, 0.4) * n;
            for (auto *ch : {&r_ch, &g_ch, &b_ch})
                fillTriangle(ch, apex_r, apex_c, n - 1.0, apex_c - base,
                             n - 1.0, apex_c + base, 0.3);
            // Snow cap.
            for (auto *ch : {&r_ch, &g_ch, &b_ch})
                fillTriangle(ch, apex_r, apex_c, apex_r + n * 0.08,
                             apex_c - base * 0.2, apex_r + n * 0.08,
                             apex_c + base * 0.2, 0.5);
        }
        break;
      }
      case 4: { // desert: warm dunes as sine ridges
        gradientFill(&r_ch, 0.6, 0.9, 0, n);
        gradientFill(&g_ch, 0.45, 0.7, 0, n);
        gradientFill(&b_ch, 0.2, 0.3, 0, n);
        int ridges = static_cast<int>(rng->randint(2, 4));
        for (int d = 0; d < ridges; ++d) {
            Real base_r = rng->uniform(0.5, 0.9) * n;
            Real amp = rng->uniform(0.03, 0.08) * n;
            Real phase = rng->uniform(0, kTwoPi);
            for (std::size_t c = 0; c + 1 < n; ++c) {
                Real y0 = base_r + amp * std::sin(kTwoPi * c / n * 2 + phase);
                Real y1 = base_r +
                          amp * std::sin(kTwoPi * (c + 1) / n * 2 + phase);
                drawLine(&r_ch, y0, static_cast<Real>(c), y1,
                         static_cast<Real>(c + 1), 1.5, 0.25);
            }
        }
        break;
      }
      case 5: { // night: dark blue + moon + white stars
        gradientFill(&b_ch, 0.35, 0.15, 0, n);
        gradientFill(&r_ch, 0.05, 0.02, 0, n);
        gradientFill(&g_ch, 0.08, 0.05, 0, n);
        Real moon_c = rng->uniform(0.2, 0.8) * n;
        Real moon_r = rng->uniform(0.1, 0.3) * n;
        for (auto *ch : {&r_ch, &g_ch, &b_ch})
            fillEllipse(ch, moon_r, moon_c, n * 0.07, n * 0.07, 0.8);
        int stars = static_cast<int>(rng->randint(15, 30));
        for (int s = 0; s < stars; ++s) {
            int sr = static_cast<int>(rng->uniform(0, 0.7) * n);
            int sc = static_cast<int>(rng->uniform(0, 1.0) * n);
            for (auto *ch : {&r_ch, &g_ch, &b_ch})
                paintPixel(ch, sr, sc, 0.9);
        }
        break;
      }
      default:
        break;
    }

    // Global illumination jitter breaks naive total-intensity shortcuts
    // (scene classes must be told apart by spatial/spectral structure).
    Real gain = rng->uniform(0.6, 1.0);
    for (auto &ch : rgb)
        for (std::size_t i = 0; i < ch.size(); ++i) {
            Real v = ch[i] * gain;
            if (config.noise > 0)
                v += rng->uniform(-config.noise, config.noise);
            ch[i] = std::clamp<Real>(v, 0, 1);
        }
    return rgb;
}

RgbDataset
makeSynthScenes(std::size_t count, uint64_t seed, const SceneConfig &config)
{
    Rng rng(seed);
    RgbDataset data;
    data.num_classes = config.num_classes;
    data.images.reserve(count);
    data.labels.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        int label = static_cast<int>(i % config.num_classes);
        data.images.push_back(renderScene(label, config, &rng));
        data.labels.push_back(label);
    }
    return data;
}

RealMap
toGrayscale(const std::array<RealMap, 3> &rgb)
{
    RealMap out(rgb[0].rows(), rgb[0].cols());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = 0.299 * rgb[0][i] + 0.587 * rgb[1][i] + 0.114 * rgb[2][i];
    return out;
}

} // namespace lightridge
