#include "data/stream.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "utils/thread_pool.hpp"

namespace lightridge {

namespace {

/** Kind-check + cheap header pass before a source starts serving. */
DatasetManifest
checkedManifest(DatasetManifest manifest, ShardKind kind)
{
    if (manifest.kind != kind)
        throw DataError("dataset manifest in '" + manifest.dir +
                        "': holds '" + shardKindName(manifest.kind) +
                        "' samples where a '" + shardKindName(kind) +
                        "' dataset is required");
    verifyShardHeaders(manifest);
    return manifest;
}

} // namespace

ShardStream::ShardStream(DatasetManifest manifest, std::size_t prefetch)
    : manifest_(std::move(manifest)), prefetch_(prefetch)
{
    prefix_.resize(manifest_.shards.size() + 1, 0);
    for (std::size_t s = 0; s < manifest_.shards.size(); ++s)
        prefix_[s + 1] = prefix_[s] + manifest_.shards[s].samples;
    shard_slot_.assign(manifest_.shards.size(), SIZE_MAX);
}

ShardStream::~ShardStream() { drainLoading(); }

std::uint64_t
ShardStream::bytesRead() const
{
    MutexLock lock(mutex_);
    return bytes_read_;
}

std::size_t
ShardStream::shardOf(std::size_t global) const
{
    const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), global);
    return static_cast<std::size_t>(it - prefix_.begin()) - 1;
}

const ShardBuffer &
ShardStream::locate(std::size_t i, std::size_t &local) const
{
    const std::size_t s = shardOf(i);
    assert(shard_slot_[s] != SIZE_MAX && "sample read without staging");
    local = i - prefix_[s];
    return slots_[shard_slot_[s]]->buffer;
}

void
ShardStream::beginEpoch(const std::vector<std::size_t> *order)
{
    drainLoading();
    releaseAllSlots();
    {
        MutexLock lock(mutex_);
        error_ = nullptr;
    }
    order_ = order;
    runs_.clear();
    first_live_run_ = 0;
    next_run_ = 0;
    if (order == nullptr)
        return;
    // Group consecutive order positions landing in the same shard into
    // runs; the two-level shuffle yields exactly one run per shard, but
    // any order works (it just decodes a shard once per run).
    std::size_t p = 0;
    while (p < order->size()) {
        Run run;
        run.shard = shardOf((*order)[p]);
        run.begin = p;
        std::size_t q = p + 1;
        while (q < order->size() && shardOf((*order)[q]) == run.shard)
            ++q;
        run.end = q;
        runs_.push_back(run);
        p = q;
    }
}

void
ShardStream::endEpoch()
{
    drainLoading();
    releaseAllSlots();
    order_ = nullptr;
    runs_.clear();
    first_live_run_ = 0;
    next_run_ = 0;
}

void
ShardStream::stageRange(std::size_t lo, std::size_t hi)
{
    if (order_ == nullptr || runs_.empty() || lo >= hi)
        return;
    hi = std::min(hi, order_->size());

    // Retire runs fully consumed before this batch: their slots go back
    // to the ring (decoded data stays cached until the slot is reused).
    while (first_live_run_ < runs_.size() && runs_[first_live_run_].end <= lo) {
        releaseRun(first_live_run_);
        ++first_live_run_;
    }
    if (first_live_run_ >= runs_.size())
        return;

    // Last run this batch touches.
    std::size_t need_end = first_live_run_;
    while (need_end + 1 < runs_.size() && runs_[need_end].end < hi)
        ++need_end;

    // Schedule decode jobs through the lookahead window before blocking,
    // so shard t+1 decodes while the trainer consumes shard t.
    const std::size_t ahead =
        std::min(runs_.size() - 1, need_end + prefetch_);
    if (next_run_ < first_live_run_)
        next_run_ = first_live_run_;
    while (next_run_ <= ahead) {
        scheduleRun(next_run_);
        ++next_run_;
    }

    for (std::size_t r = first_live_run_; r <= need_end; ++r)
        waitRun(r);
}

void
ShardStream::stageIndices(std::size_t lo, std::size_t hi)
{
    if (lo >= hi)
        return;
    hi = std::min(hi, size());
    const std::size_t first = shardOf(lo);
    const std::size_t last = shardOf(hi - 1);
    for (std::size_t s = first; s <= last; ++s) {
        std::size_t idx = shard_slot_[s];
        if (idx != SIZE_MAX) {
            MutexLock lock(mutex_);
            while (slot_state_[idx] == SlotState::Loading)
                cv_.wait(mutex_);
            if (error_)
                std::rethrow_exception(error_);
            if (slot_state_[idx] == SlotState::Free)
                slot_state_[idx] = SlotState::Ready; // cached decode
            continue;
        }
        idx = acquireSlot();
        Slot &sl = *slots_[idx];
        sl.shard = s;
        sl.run = SIZE_MAX;
        shard_slot_[s] = idx;
        decodeInline(idx);
    }
}

std::size_t
ShardStream::acquireSlot()
{
    // Prefer a Free slot with no cached shard; failing that, repurpose
    // any Free slot (evicting its cache); grow the ring only when every
    // slot is busy — so the ring sizes itself to the high-water mark of
    // concurrent residency, not to the dataset.
    std::size_t found = SIZE_MAX;
    {
        MutexLock lock(mutex_);
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (slot_state_[i] != SlotState::Free)
                continue;
            if (slots_[i]->shard == SIZE_MAX)
                return i;
            if (found == SIZE_MAX)
                found = i;
        }
    }
    if (found != SIZE_MAX) {
        Slot &sl = *slots_[found];
        if (sl.shard != SIZE_MAX && shard_slot_[sl.shard] == found)
            shard_slot_[sl.shard] = SIZE_MAX;
        sl.shard = SIZE_MAX;
        return found;
    }
    slots_.push_back(std::make_unique<Slot>());
    {
        MutexLock lock(mutex_);
        slot_state_.push_back(SlotState::Free);
    }
    return slots_.size() - 1;
}

void
ShardStream::scheduleRun(std::size_t r)
{
    Run &run = runs_[r];
    const std::size_t s = run.shard;
    std::size_t idx = shard_slot_[s];
    if (idx != SIZE_MAX) {
        // Shard already resident (Ready, still decoding, or cached in a
        // Free slot): claim it for this run instead of re-decoding.
        slots_[idx]->run = r;
        run.slot = idx;
        MutexLock lock(mutex_);
        if (slot_state_[idx] == SlotState::Free)
            slot_state_[idx] = SlotState::Ready;
        return;
    }
    idx = acquireSlot();
    Slot &sl = *slots_[idx];
    sl.shard = s;
    sl.run = r;
    run.slot = idx;
    shard_slot_[s] = idx;
    {
        MutexLock lock(mutex_);
        slot_state_[idx] = SlotState::Loading;
        ++loading_;
    }
    // The job touches only its own slot's buffer and the guarded state
    // word; it must not throw (pool contract), so failures are parked in
    // error_ and rethrown by the main thread in waitRun.
    Slot *slot = slots_[idx].get();
    ThreadPool::global().enqueue([this, slot, idx, s]() {
        std::exception_ptr err;
        try {
            decodeShardInto(manifest_, s, slot->buffer);
        } catch (...) {
            err = std::current_exception();
        }
        MutexLock lock(mutex_);
        if (err) {
            slot_state_[idx] = SlotState::Failed;
            if (!error_)
                error_ = err;
        } else {
            slot_state_[idx] = SlotState::Ready;
            bytes_read_ += manifest_.shards[s].bytes;
        }
        --loading_;
        cv_.notify_all();
    });
}

void
ShardStream::waitRun(std::size_t r)
{
    const std::size_t idx = runs_[r].slot;
    if (idx == SIZE_MAX)
        return;
    MutexLock lock(mutex_);
    while (slot_state_[idx] == SlotState::Loading)
        cv_.wait(mutex_);
    if (error_)
        std::rethrow_exception(error_);
}

void
ShardStream::releaseRun(std::size_t r)
{
    Run &run = runs_[r];
    if (run.slot == SIZE_MAX)
        return;
    Slot &sl = *slots_[run.slot];
    if (sl.run != r)
        return; // a later run re-claimed the resident shard
    MutexLock lock(mutex_);
    if (slot_state_[run.slot] != SlotState::Ready)
        return; // Loading/Failed slots are cleaned up by begin/endEpoch
    slot_state_[run.slot] = SlotState::Free; // shard cache mapping kept
    sl.run = SIZE_MAX;
}

void
ShardStream::drainLoading()
{
    MutexLock lock(mutex_);
    while (loading_ > 0)
        cv_.wait(mutex_);
}

void
ShardStream::releaseAllSlots()
{
    MutexLock lock(mutex_);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        Slot &sl = *slots_[i];
        if (slot_state_[i] == SlotState::Failed) {
            // A failed decode leaves the buffer unusable: drop the cache
            // mapping so the shard is re-decoded if requested again.
            if (sl.shard != SIZE_MAX && shard_slot_[sl.shard] == i)
                shard_slot_[sl.shard] = SIZE_MAX;
            sl.shard = SIZE_MAX;
        }
        slot_state_[i] = SlotState::Free;
        sl.run = SIZE_MAX;
    }
}

void
ShardStream::decodeInline(std::size_t slot_index)
{
    Slot &sl = *slots_[slot_index];
    try {
        decodeShardInto(manifest_, sl.shard, sl.buffer);
    } catch (...) {
        // Partially decoded buffers must not be served as a cache.
        if (shard_slot_[sl.shard] == slot_index)
            shard_slot_[sl.shard] = SIZE_MAX;
        sl.shard = SIZE_MAX;
        throw;
    }
    MutexLock lock(mutex_);
    slot_state_[slot_index] = SlotState::Ready;
    bytes_read_ += manifest_.shards[sl.shard].bytes;
}

ShardedClassSource::ShardedClassSource(DatasetManifest manifest,
                                       std::size_t prefetch)
    : stream_(checkedManifest(std::move(manifest), ShardKind::Class),
              prefetch)
{}

ShardedSegSource::ShardedSegSource(DatasetManifest manifest,
                                   std::size_t prefetch)
    : stream_(checkedManifest(std::move(manifest), ShardKind::Seg), prefetch)
{}

ShardedRgbSource::ShardedRgbSource(DatasetManifest manifest,
                                   std::size_t prefetch)
    : stream_(checkedManifest(std::move(manifest), ShardKind::Rgb), prefetch)
{}

} // namespace lightridge
