/**
 * @file
 * Tiny software rasterizer used by the synthetic dataset generators:
 * anti-aliased thick lines, filled rectangles/ellipses/triangles on a
 * RealMap in [0, 1] intensity.
 */
#pragma once

#include <algorithm>
#include <cmath>

#include "tensor/field.hpp"

namespace lightridge {

/** Saturating additive paint of one pixel. */
inline void
paintPixel(RealMap *img, int r, int c, Real value)
{
    if (r < 0 || c < 0 || r >= static_cast<int>(img->rows()) ||
        c >= static_cast<int>(img->cols()))
        return;
    Real &p = (*img)(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
    p = std::min<Real>(1.0, p + value);
}

/** Thick anti-aliased line from (r0,c0) to (r1,c1) in pixel coordinates. */
inline void
drawLine(RealMap *img, Real r0, Real c0, Real r1, Real c1, Real thickness,
         Real intensity = 1.0)
{
    const Real dr = r1 - r0, dc = c1 - c0;
    const Real len_sq = dr * dr + dc * dc;
    const Real half = thickness / 2;
    const int rmin = static_cast<int>(std::floor(std::min(r0, r1) - half - 1));
    const int rmax = static_cast<int>(std::ceil(std::max(r0, r1) + half + 1));
    const int cmin = static_cast<int>(std::floor(std::min(c0, c1) - half - 1));
    const int cmax = static_cast<int>(std::ceil(std::max(c0, c1) + half + 1));
    for (int r = rmin; r <= rmax; ++r) {
        for (int c = cmin; c <= cmax; ++c) {
            // Distance from pixel center to the segment.
            Real t = len_sq > 0
                         ? std::clamp(((r - r0) * dr + (c - c0) * dc) / len_sq,
                                      Real(0), Real(1))
                         : 0;
            Real pr = r0 + t * dr, pc = c0 + t * dc;
            Real dist = std::hypot(r - pr, c - pc);
            Real cover = std::clamp(half + Real(0.5) - dist, Real(0), Real(1));
            if (cover > 0)
                paintPixel(img, r, c, cover * intensity);
        }
    }
}

/** Axis-aligned filled rectangle (inclusive pixel bounds, clipped). */
inline void
fillRect(RealMap *img, int r0, int c0, int r1, int c1, Real intensity = 1.0)
{
    for (int r = std::max(r0, 0);
         r <= std::min<int>(r1, static_cast<int>(img->rows()) - 1); ++r)
        for (int c = std::max(c0, 0);
             c <= std::min<int>(c1, static_cast<int>(img->cols()) - 1); ++c)
            (*img)(r, c) = std::min<Real>(1.0, (*img)(r, c) + intensity);
}

/** Filled ellipse centered at (rc, cc) with radii (rr, cr). */
inline void
fillEllipse(RealMap *img, Real rc, Real cc, Real rr, Real cr,
            Real intensity = 1.0)
{
    const int r0 = static_cast<int>(std::floor(rc - rr)),
              r1 = static_cast<int>(std::ceil(rc + rr));
    const int c0 = static_cast<int>(std::floor(cc - cr)),
              c1 = static_cast<int>(std::ceil(cc + cr));
    for (int r = r0; r <= r1; ++r)
        for (int c = c0; c <= c1; ++c) {
            Real u = (r - rc) / rr, v = (c - cc) / cr;
            if (u * u + v * v <= 1.0)
                paintPixel(img, r, c, intensity);
        }
}

/** Ellipse outline with given stroke thickness. */
inline void
strokeEllipse(RealMap *img, Real rc, Real cc, Real rr, Real cr,
              Real thickness, Real intensity = 1.0)
{
    const int steps = 64;
    Real pr = rc + rr * std::sin(0.0), pc = cc + cr * std::cos(0.0);
    for (int s = 1; s <= steps; ++s) {
        Real a = kTwoPi * s / steps;
        Real nr = rc + rr * std::sin(a), nc = cc + cr * std::cos(a);
        drawLine(img, pr, pc, nr, nc, thickness, intensity);
        pr = nr;
        pc = nc;
    }
}

/** Filled triangle via barycentric containment. */
inline void
fillTriangle(RealMap *img, Real r0, Real c0, Real r1, Real c1, Real r2,
             Real c2, Real intensity = 1.0)
{
    const int rmin = static_cast<int>(std::floor(std::min({r0, r1, r2})));
    const int rmax = static_cast<int>(std::ceil(std::max({r0, r1, r2})));
    const int cmin = static_cast<int>(std::floor(std::min({c0, c1, c2})));
    const int cmax = static_cast<int>(std::ceil(std::max({c0, c1, c2})));
    const Real det = (r1 - r0) * (c2 - c0) - (r2 - r0) * (c1 - c0);
    if (std::abs(det) < 1e-12)
        return;
    for (int r = rmin; r <= rmax; ++r)
        for (int c = cmin; c <= cmax; ++c) {
            Real a = ((r - r0) * (c2 - c0) - (r2 - r0) * (c - c0)) / det;
            Real b = ((r1 - r0) * (c - c0) - (r - r0) * (c1 - c0)) / det;
            if (a >= 0 && b >= 0 && a + b <= 1)
                paintPixel(img, r, c, intensity);
        }
}

} // namespace lightridge
