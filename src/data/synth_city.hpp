/**
 * @file
 * Procedural CityScapes-like segmentation dataset ("SynthCity").
 *
 * The paper's segmentation case study (Section 5.6.2) converts CityScapes
 * to grayscale and uses binary building-vs-rest masks. This generator
 * produces the same kind of supervised pair: a grayscale street scene
 * (sky, buildings with windows, road) plus the binary building mask.
 */
#pragma once

#include <cstdint>

#include "core/dataset.hpp"
#include "utils/rng.hpp"

namespace lightridge {

/** Generation knobs for the synthetic street-scene dataset. */
struct CityConfig
{
    std::size_t image_size = 64;
    std::size_t min_buildings = 2;
    std::size_t max_buildings = 5;
    Real noise = 0.02;
};

/** Render one (image, building-mask) pair. */
void renderCityScene(const CityConfig &config, Rng *rng, RealMap *image,
                     RealMap *mask);

/** Dataset of `count` pairs, deterministic by seed. */
SegDataset makeSynthCity(std::size_t count, uint64_t seed,
                         const CityConfig &config = {});

} // namespace lightridge
