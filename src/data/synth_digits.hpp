/**
 * @file
 * Procedural MNIST-like digit dataset ("SynthMNIST").
 *
 * No dataset files exist in this offline environment, so digits 0-9 are
 * rendered from stroke templates with per-sample random affine jitter
 * (rotation, scale, translation), stroke-thickness variation, and optional
 * pixel noise. The result is a deterministic, seed-reproducible 10-class
 * 28x28 grayscale distribution with intra-class variation - everything the
 * DONN experiments actually depend on (see DESIGN.md, Substitutions).
 */
#pragma once

#include <cstdint>

#include "core/dataset.hpp"
#include "utils/rng.hpp"

namespace lightridge {

/** Generation knobs for the synthetic digit dataset. */
struct DigitConfig
{
    std::size_t image_size = 28;
    Real rotation_deg = 10.0;  ///< max |rotation| jitter
    Real scale_jitter = 0.12;  ///< max relative scale jitter
    Real shift_px = 1.5;       ///< max |translation| jitter
    Real noise = 0.02;         ///< additive uniform pixel noise amplitude
    bool binarize = false;     ///< threshold at 0.5 (Fig. 6 uses binary)
};

/** Render one digit image (label in 0..9) with jitter drawn from rng. */
RealMap renderDigit(int label, const DigitConfig &config, Rng *rng);

/** Balanced dataset of `count` samples, deterministic by seed. */
ClassDataset makeSynthDigits(std::size_t count, uint64_t seed,
                             const DigitConfig &config = {});

} // namespace lightridge
