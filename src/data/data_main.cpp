/**
 * @file
 * lightridge_data: pack synthetic datasets into on-disk shards and
 * inspect/validate the resulting manifests.
 *
 *   lightridge_data pack --dataset=digits|fashion|city|scenes
 *                        --out=DIR [--samples=N] [--seed=S]
 *                        [--image-size=K] [--shards=M | --shard-samples=P]
 *   lightridge_data inspect  <manifest.json>
 *   lightridge_data validate <manifest.json>
 *
 * `pack` synthesizes the named dataset exactly like the experiment
 * runner (same generators, seeded) and writes it to DIR as binary
 * shards plus a manifest.json, ready for a `"dataset": {"kind":
 * "sharded", ...}` spec block. `inspect` prints the manifest summary
 * after a header-only pass over every shard; `validate` additionally
 * re-reads every payload and checks the checksums. Exit codes: 0
 * success, 1 usage error, 2 data error (the message names the
 * offending shard).
 */
#include <cstdio>
#include <string>

#include "data/shard.hpp"
#include "data/synth_city.hpp"
#include "data/synth_digits.hpp"
#include "data/synth_fashion.hpp"
#include "data/synth_scenes.hpp"
#include "utils/cli.hpp"

using namespace lightridge;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: lightridge_data pack --dataset=digits|fashion|city|scenes\n"
        "                            --out=DIR [--samples=N] [--seed=S]\n"
        "                            [--image-size=K]\n"
        "                            [--shards=M | --shard-samples=P]\n"
        "       lightridge_data inspect  <manifest.json>\n"
        "       lightridge_data validate <manifest.json>\n"
        "\n"
        "Packs a synthesized dataset into binary shards + manifest.json\n"
        "(the on-disk format streamed training reads), or checks an\n"
        "existing manifest: inspect verifies shard headers, validate\n"
        "re-reads every payload and its checksum.\n");
}

void
printManifest(const std::string &path, const DatasetManifest &manifest)
{
    std::printf("manifest:   %s\n", path.c_str());
    std::printf("kind:       %s\n", shardKindName(manifest.kind));
    std::printf("shape:      %zux%zu\n", manifest.rows, manifest.cols);
    if (manifest.kind != ShardKind::Seg)
        std::printf("classes:    %zu\n", manifest.num_classes);
    std::printf("samples:    %zu\n", manifest.samples);
    std::printf("shards:     %zu\n", manifest.shards.size());
    for (std::size_t s = 0; s < manifest.shards.size(); ++s) {
        const ShardInfo &info = manifest.shards[s];
        std::printf("  %-20s %6zu samples  %10llu bytes  fnv1a %016llx\n",
                    info.file.c_str(), info.samples,
                    static_cast<unsigned long long>(info.bytes),
                    static_cast<unsigned long long>(info.checksum));
    }
}

int
packCommand(const CliArgs &args)
{
    const std::string dataset = args.getString("dataset", "");
    const std::string out = args.getString("out", "");
    if (out.empty() || dataset.empty()) {
        usage();
        return 1;
    }
    const std::size_t samples =
        static_cast<std::size_t>(args.getInt("samples", 300));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("seed", 7));
    const int image_size = args.getInt("image-size", 0);
    if (samples == 0) {
        std::fprintf(stderr, "lightridge_data: --samples must be > 0\n");
        return 1;
    }

    PackOptions options;
    if (args.has("shard-samples")) {
        options.shard_samples =
            static_cast<std::size_t>(args.getInt("shard-samples", 0));
    } else if (args.has("shards")) {
        const std::size_t shards =
            static_cast<std::size_t>(args.getInt("shards", 1));
        if (shards == 0) {
            std::fprintf(stderr, "lightridge_data: --shards must be > 0\n");
            return 1;
        }
        options.shard_samples = (samples + shards - 1) / shards;
    }

    DatasetManifest manifest;
    if (dataset == "digits") {
        DigitConfig dc;
        if (image_size > 0)
            dc.image_size = static_cast<std::size_t>(image_size);
        manifest = writeShards(makeSynthDigits(samples, seed, dc), out,
                               options);
    } else if (dataset == "fashion") {
        FashionConfig fc;
        if (image_size > 0)
            fc.image_size = static_cast<std::size_t>(image_size);
        manifest = writeShards(makeSynthFashion(samples, seed, fc), out,
                               options);
    } else if (dataset == "city") {
        CityConfig cc;
        if (image_size > 0)
            cc.image_size = static_cast<std::size_t>(image_size);
        manifest = writeShards(makeSynthCity(samples, seed, cc), out,
                               options);
    } else if (dataset == "scenes") {
        SceneConfig sc;
        if (image_size > 0)
            sc.image_size = static_cast<std::size_t>(image_size);
        manifest = writeShards(makeSynthScenes(samples, seed, sc), out,
                               options);
    } else {
        std::fprintf(stderr, "lightridge_data: unknown dataset: %s\n",
                     dataset.c_str());
        return 1;
    }

    printManifest(out + "/manifest.json", manifest);
    return 0;
}

int
inspectCommand(const std::string &path, bool full)
{
    const DatasetManifest manifest = DatasetManifest::load(path);
    if (full)
        validateManifest(manifest);
    else
        verifyShardHeaders(manifest);
    printManifest(path, manifest);
    std::printf("status:     %s\n", full ? "ok (payload checksums verified)"
                                         : "ok (shard headers verified)");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string command = argv[1];
    const CliArgs args(argc - 1, argv + 1);

    try {
        if (command == "pack")
            return packCommand(args);
        if (command == "inspect" || command == "validate") {
            // The manifest path is the first positional after the command.
            std::string path;
            for (int i = 2; i < argc; ++i) {
                if (std::string(argv[i]).rfind("--", 0) != 0) {
                    path = argv[i];
                    break;
                }
            }
            if (path.empty()) {
                usage();
                return 1;
            }
            return inspectCommand(path, command == "validate");
        }
    } catch (const std::exception &err) {
        std::fprintf(stderr, "lightridge_data: %s\n", err.what());
        return 2;
    }

    std::fprintf(stderr, "lightridge_data: unknown command: %s\n",
                 command.c_str());
    usage();
    return 1;
}
