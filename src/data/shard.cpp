#include "data/shard.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>

namespace lightridge {

namespace {

/** Planes stored per sample for a kind (class 1, seg 2, rgb 3). */
std::size_t
kindPlanes(ShardKind kind)
{
    switch (kind) {
    case ShardKind::Class:
        return 1;
    case ShardKind::Seg:
        return 2;
    default:
        return 3;
    }
}

/** True when samples of this kind carry an int32 label. */
bool
kindHasLabel(ShardKind kind)
{
    return kind != ShardKind::Seg;
}

/** Payload bytes of one sample record. */
std::uint64_t
sampleBytes(ShardKind kind, std::size_t rows, std::size_t cols)
{
    std::uint64_t bytes = static_cast<std::uint64_t>(kindPlanes(kind)) *
                          rows * cols * sizeof(Real);
    if (kindHasLabel(kind))
        bytes += sizeof(std::int32_t);
    return bytes;
}

std::string
hex64(std::uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::uint64_t
parseHex64(const std::string &text, const std::string &origin)
{
    if (text.empty() || text.size() > 16)
        throw DataError(origin + ": bad checksum string \"" + text + "\"");
    std::uint64_t value = 0;
    for (char c : text) {
        value <<= 4;
        if (c >= '0' && c <= '9')
            value |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            value |= static_cast<std::uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            value |= static_cast<std::uint64_t>(c - 'A' + 10);
        else
            throw DataError(origin + ": bad checksum string \"" + text +
                            "\"");
    }
    return value;
}

void
expectManifestKeys(const Json &j,
                   std::initializer_list<const char *> allowed,
                   const std::string &origin, const std::string &where)
{
    for (const auto &entry : j.asObject()) {
        bool known = false;
        for (const char *key : allowed)
            known = known || entry.first == key;
        if (!known)
            throw DataError(origin + ": unknown key in " + where + ": " +
                            entry.first);
    }
}

/** RAII stdio file handle. */
struct File
{
    std::FILE *fp = nullptr;

    File(const std::string &path, const char *mode)
        : fp(std::fopen(path.c_str(), mode))
    {}
    ~File()
    {
        if (fp != nullptr)
            std::fclose(fp);
    }
    File(const File &) = delete;
    File &operator=(const File &) = delete;
};

void
writeExact(std::FILE *fp, const void *data, std::size_t bytes,
           const std::string &path)
{
    if (bytes > 0 && std::fwrite(data, 1, bytes, fp) != bytes)
        throw DataError("shard " + path + ": write failed");
}

void
readExact(std::FILE *fp, void *data, std::size_t bytes,
          const std::string &path, const char *what)
{
    if (bytes > 0 && std::fread(data, 1, bytes, fp) != bytes)
        throw DataError("shard " + path + ": truncated " + what);
}

/** Fixed shard header, serialized field by field (no struct padding). */
struct ShardHeader
{
    char magic[8];
    std::uint32_t version = kShardVersion;
    std::uint32_t kind = 0;
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::uint32_t planes = 0;
    std::uint32_t reserved = 0;
    std::uint64_t samples = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t checksum = 0;
};

void
writeHeader(std::FILE *fp, const ShardHeader &h, const std::string &path)
{
    writeExact(fp, h.magic, sizeof(h.magic), path);
    writeExact(fp, &h.version, sizeof(h.version), path);
    writeExact(fp, &h.kind, sizeof(h.kind), path);
    writeExact(fp, &h.rows, sizeof(h.rows), path);
    writeExact(fp, &h.cols, sizeof(h.cols), path);
    writeExact(fp, &h.planes, sizeof(h.planes), path);
    writeExact(fp, &h.reserved, sizeof(h.reserved), path);
    writeExact(fp, &h.samples, sizeof(h.samples), path);
    writeExact(fp, &h.payload_bytes, sizeof(h.payload_bytes), path);
    writeExact(fp, &h.checksum, sizeof(h.checksum), path);
}

ShardHeader
readHeader(std::FILE *fp, const std::string &path)
{
    ShardHeader h;
    readExact(fp, h.magic, sizeof(h.magic), path, "header");
    readExact(fp, &h.version, sizeof(h.version), path, "header");
    readExact(fp, &h.kind, sizeof(h.kind), path, "header");
    readExact(fp, &h.rows, sizeof(h.rows), path, "header");
    readExact(fp, &h.cols, sizeof(h.cols), path, "header");
    readExact(fp, &h.planes, sizeof(h.planes), path, "header");
    readExact(fp, &h.reserved, sizeof(h.reserved), path, "header");
    readExact(fp, &h.samples, sizeof(h.samples), path, "header");
    readExact(fp, &h.payload_bytes, sizeof(h.payload_bytes), path, "header");
    readExact(fp, &h.checksum, sizeof(h.checksum), path, "header");
    return h;
}

/** Append one plane's pixels to the payload buffer. */
void
appendPlane(std::vector<unsigned char> &payload, const RealMap &plane)
{
    const auto *bytes =
        reinterpret_cast<const unsigned char *>(plane.data());
    payload.insert(payload.end(), bytes,
                   bytes + plane.size() * sizeof(Real));
}

void
appendLabel(std::vector<unsigned char> &payload, int label)
{
    std::int32_t value = static_cast<std::int32_t>(label);
    const auto *bytes = reinterpret_cast<const unsigned char *>(&value);
    payload.insert(payload.end(), bytes, bytes + sizeof(value));
}

/**
 * Shared packing loop: `emit(payload, i)` appends sample i's record.
 * Writes shard files + manifest.json under dir and returns the manifest.
 */
template <typename Emit>
DatasetManifest
packDataset(ShardKind kind, std::size_t count, std::size_t num_classes,
            std::size_t rows, std::size_t cols, const std::string &dir,
            const PackOptions &options, const Emit &emit)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);

    DatasetManifest manifest;
    manifest.kind = kind;
    manifest.num_classes = num_classes;
    manifest.rows = rows;
    manifest.cols = cols;
    manifest.samples = count;
    manifest.dir = dir;

    const std::size_t per_shard =
        options.shard_samples > 0 ? options.shard_samples
                                  : std::max<std::size_t>(count, 1);
    std::vector<unsigned char> payload;
    for (std::size_t start = 0; start < count; start += per_shard) {
        const std::size_t n = std::min(per_shard, count - start);
        payload.clear();
        for (std::size_t i = 0; i < n; ++i)
            emit(payload, start + i);

        char name[32];
        std::snprintf(name, sizeof(name), "shard_%05zu.bin",
                      manifest.shards.size());
        ShardInfo info;
        info.file = name;
        info.samples = n;
        info.bytes = payload.size();
        info.checksum = fnv1a64(payload.data(), payload.size());

        const std::string path = dir + "/" + name;
        File file(path, "wb");
        if (file.fp == nullptr)
            throw DataError("shard " + path + ": cannot open for writing");
        ShardHeader h;
        std::memcpy(h.magic, kShardMagic, sizeof(h.magic));
        h.kind = static_cast<std::uint32_t>(kind);
        h.rows = static_cast<std::uint32_t>(rows);
        h.cols = static_cast<std::uint32_t>(cols);
        h.planes = static_cast<std::uint32_t>(kindPlanes(kind));
        h.samples = n;
        h.payload_bytes = payload.size();
        h.checksum = info.checksum;
        writeHeader(file.fp, h, path);
        writeExact(file.fp, payload.data(), payload.size(), path);

        manifest.shards.push_back(std::move(info));
    }

    const std::string manifest_path = dir + "/manifest.json";
    if (!manifest.toJson().save(manifest_path))
        throw DataError("manifest " + manifest_path + ": cannot write");
    return manifest;
}

/** Read + validate one shard's header against its manifest entry. */
ShardHeader
readVerifiedHeader(const DatasetManifest &manifest, std::size_t shard,
                   std::FILE *fp, const std::string &path)
{
    const ShardInfo &info = manifest.shards[shard];
    ShardHeader h = readHeader(fp, path);
    if (std::memcmp(h.magic, kShardMagic, sizeof(h.magic)) != 0)
        throw DataError("shard " + path + ": bad magic (not a lightridge "
                        "shard file)");
    if (h.version > kShardVersion)
        throw DataError("shard " + path + ": format version " +
                        std::to_string(h.version) +
                        " is newer than supported version " +
                        std::to_string(kShardVersion));
    if (h.kind != static_cast<std::uint32_t>(manifest.kind))
        throw DataError("shard " + path + ": kind mismatch vs manifest");
    if (h.rows != manifest.rows || h.cols != manifest.cols)
        throw DataError("shard " + path + ": shape " +
                        std::to_string(h.rows) + "x" +
                        std::to_string(h.cols) + " does not match manifest " +
                        std::to_string(manifest.rows) + "x" +
                        std::to_string(manifest.cols));
    if (h.planes != kindPlanes(manifest.kind))
        throw DataError("shard " + path + ": plane count mismatch");
    if (h.samples != info.samples)
        throw DataError("shard " + path + ": sample count " +
                        std::to_string(h.samples) +
                        " does not match manifest entry " +
                        std::to_string(info.samples));
    const std::uint64_t expect_bytes =
        sampleBytes(manifest.kind, manifest.rows, manifest.cols) *
        info.samples;
    if (h.payload_bytes != info.bytes || h.payload_bytes != expect_bytes)
        throw DataError("shard " + path + ": payload size mismatch");
    return h;
}

/**
 * Read + verify one shard's header and payload into `raw` (storage
 * reused across calls). Validates against the manifest entry and the
 * recorded checksum.
 */
void
readShardPayload(const DatasetManifest &manifest, std::size_t shard,
                 std::vector<unsigned char> &raw)
{
    const ShardInfo &info = manifest.shards[shard];
    const std::string path = manifest.shardPath(shard);
    File file(path, "rb");
    if (file.fp == nullptr)
        throw DataError("shard " + path + ": missing or unreadable");
    ShardHeader h = readVerifiedHeader(manifest, shard, file.fp, path);
    raw.resize(static_cast<std::size_t>(h.payload_bytes));
    readExact(file.fp, raw.data(), raw.size(), path, "payload");
    const std::uint64_t sum = fnv1a64(raw.data(), raw.size());
    if (sum != h.checksum || sum != info.checksum)
        throw DataError("shard " + path + ": checksum mismatch (manifest " +
                        hex64(info.checksum) + ", payload " + hex64(sum) +
                        ")");
}

/** Copy one plane out of the payload into a shape-ensured RealMap. */
const unsigned char *
takePlane(const unsigned char *p, RealMap &plane, std::size_t rows,
          std::size_t cols)
{
    if (plane.rows() != rows || plane.cols() != cols)
        plane = RealMap(rows, cols);
    std::memcpy(plane.data(), p, rows * cols * sizeof(Real));
    return p + rows * cols * sizeof(Real);
}

const unsigned char *
takeLabel(const unsigned char *p, int &label)
{
    std::int32_t value = 0;
    std::memcpy(&value, p, sizeof(value));
    label = static_cast<int>(value);
    return p + sizeof(value);
}

} // namespace

const char *
shardKindName(ShardKind kind)
{
    switch (kind) {
    case ShardKind::Class:
        return "class";
    case ShardKind::Seg:
        return "seg";
    default:
        return "rgb";
    }
}

ShardKind
shardKindFromName(const std::string &name)
{
    if (name == "class")
        return ShardKind::Class;
    if (name == "seg")
        return ShardKind::Seg;
    if (name == "rgb")
        return ShardKind::Rgb;
    throw DataError("unknown dataset kind: " + name);
}

std::uint64_t
fnv1a64(const void *data, std::size_t bytes)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < bytes; ++i) {
        hash ^= p[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::string
DatasetManifest::shardPath(std::size_t s) const
{
    return dir.empty() ? shards[s].file : dir + "/" + shards[s].file;
}

std::vector<std::size_t>
DatasetManifest::shardSizes() const
{
    std::vector<std::size_t> sizes;
    sizes.reserve(shards.size());
    for (const ShardInfo &info : shards)
        sizes.push_back(info.samples);
    return sizes;
}

Json
DatasetManifest::toJson() const
{
    Json j;
    j["format"] = Json(kManifestFormat);
    j["version"] = Json(kManifestVersion);
    j["kind"] = Json(shardKindName(kind));
    if (kind != ShardKind::Seg)
        j["num_classes"] = Json(num_classes);
    Json image;
    image["rows"] = Json(rows);
    image["cols"] = Json(cols);
    j["image"] = std::move(image);
    j["samples"] = Json(samples);
    Json shard_list;
    for (const ShardInfo &info : shards) {
        Json entry;
        entry["file"] = Json(info.file);
        entry["samples"] = Json(info.samples);
        entry["bytes"] = Json(static_cast<std::size_t>(info.bytes));
        entry["checksum"] = Json(hex64(info.checksum));
        shard_list.push(std::move(entry));
    }
    j["shards"] = std::move(shard_list);
    return j;
}

DatasetManifest
DatasetManifest::fromJson(const Json &j, const std::string &origin)
{
    try {
        if (!j.isObject())
            throw DataError(origin + ": manifest is not a JSON object");
        expectManifestKeys(j,
                           {"format", "version", "kind", "num_classes",
                            "image", "samples", "shards"},
                           origin, "manifest");
        if (!j.has("format") || j.at("format").asString() != kManifestFormat)
            throw DataError(origin + ": not a " +
                            std::string(kManifestFormat) + " manifest");
        const int version = j.has("version") ? j.at("version").asInt() : 1;
        if (version > kManifestVersion)
            throw DataError(origin + ": manifest version " +
                            std::to_string(version) +
                            " is newer than supported version " +
                            std::to_string(kManifestVersion));

        DatasetManifest manifest;
        manifest.kind = shardKindFromName(j.at("kind").asString());
        manifest.num_classes =
            static_cast<std::size_t>(j.numberOr("num_classes", 0));
        const Json &image = j.at("image");
        expectManifestKeys(image, {"rows", "cols"}, origin,
                           "manifest image");
        manifest.rows = static_cast<std::size_t>(image.at("rows").asNumber());
        manifest.cols = static_cast<std::size_t>(image.at("cols").asNumber());
        manifest.samples =
            static_cast<std::size_t>(j.at("samples").asNumber());

        std::size_t total = 0;
        for (const Json &entry : j.at("shards").asArray()) {
            expectManifestKeys(entry,
                               {"file", "samples", "bytes", "checksum"},
                               origin, "manifest shard entry");
            ShardInfo info;
            info.file = entry.at("file").asString();
            info.samples =
                static_cast<std::size_t>(entry.at("samples").asNumber());
            info.bytes =
                static_cast<std::uint64_t>(entry.at("bytes").asNumber());
            info.checksum =
                parseHex64(entry.at("checksum").asString(), origin);
            total += info.samples;
            manifest.shards.push_back(std::move(info));
        }
        if (total != manifest.samples)
            throw DataError(origin + ": shard sample counts sum to " +
                            std::to_string(total) +
                            " but manifest declares " +
                            std::to_string(manifest.samples));
        if (manifest.rows == 0 || manifest.cols == 0)
            throw DataError(origin + ": zero image dimensions");
        return manifest;
    } catch (const JsonError &e) {
        throw DataError(origin + ": " + e.what());
    }
}

DatasetManifest
DatasetManifest::load(const std::string &path)
{
    Json j;
    try {
        j = Json::load(path);
    } catch (const JsonError &e) {
        throw DataError("manifest " + path + ": " + e.what());
    }
    DatasetManifest manifest = fromJson(j, "manifest " + path);
    const std::size_t slash = path.find_last_of('/');
    manifest.dir = slash == std::string::npos ? "" : path.substr(0, slash);
    return manifest;
}

void
decodeShardInto(const DatasetManifest &manifest, std::size_t shard,
                ShardBuffer &out)
{
    // One reusable payload buffer per calling thread: decode is invoked
    // from prefetcher pool jobs, and the buffer grows to the largest
    // shard once, then holds steady (arena-style reuse; RealMap slot
    // storage below is likewise shape-stable after the first epoch).
    thread_local std::vector<unsigned char> raw;
    readShardPayload(manifest, shard, raw);

    const std::size_t n = manifest.shards[shard].samples;
    const std::size_t rows = manifest.rows;
    const std::size_t cols = manifest.cols;
    out.images.resize(manifest.kind == ShardKind::Rgb ? 0 : n);
    out.masks.resize(manifest.kind == ShardKind::Seg ? n : 0);
    out.rgb.resize(manifest.kind == ShardKind::Rgb ? n : 0);
    out.labels.resize(kindHasLabel(manifest.kind) ? n : 0);

    const unsigned char *p = raw.data();
    for (std::size_t i = 0; i < n; ++i) {
        if (manifest.kind == ShardKind::Seg) {
            p = takePlane(p, out.images[i], rows, cols);
            p = takePlane(p, out.masks[i], rows, cols);
        } else if (manifest.kind == ShardKind::Rgb) {
            for (std::size_t ch = 0; ch < 3; ++ch)
                p = takePlane(p, out.rgb[i][ch], rows, cols);
            p = takeLabel(p, out.labels[i]);
        } else {
            p = takePlane(p, out.images[i], rows, cols);
            p = takeLabel(p, out.labels[i]);
        }
    }
}

void
validateManifest(const DatasetManifest &manifest)
{
    std::vector<unsigned char> raw;
    for (std::size_t s = 0; s < manifest.shards.size(); ++s)
        readShardPayload(manifest, s, raw);
}

void
verifyShardHeaders(const DatasetManifest &manifest)
{
    for (std::size_t s = 0; s < manifest.shards.size(); ++s) {
        const std::string path = manifest.shardPath(s);
        File file(path, "rb");
        if (file.fp == nullptr)
            throw DataError("shard " + path + ": missing or unreadable");
        readVerifiedHeader(manifest, s, file.fp, path);
    }
}

DatasetManifest
writeShards(const ClassDataset &data, const std::string &dir,
            const PackOptions &options)
{
    const std::size_t rows = data.size() > 0 ? data.images[0].rows() : 0;
    const std::size_t cols = data.size() > 0 ? data.images[0].cols() : 0;
    return packDataset(
        ShardKind::Class, data.size(), data.num_classes, rows, cols, dir,
        options, [&](std::vector<unsigned char> &payload, std::size_t i) {
            appendPlane(payload, data.images[i]);
            appendLabel(payload, data.labels[i]);
        });
}

DatasetManifest
writeShards(const SegDataset &data, const std::string &dir,
            const PackOptions &options)
{
    const std::size_t rows = data.size() > 0 ? data.images[0].rows() : 0;
    const std::size_t cols = data.size() > 0 ? data.images[0].cols() : 0;
    return packDataset(
        ShardKind::Seg, data.size(), 0, rows, cols, dir, options,
        [&](std::vector<unsigned char> &payload, std::size_t i) {
            appendPlane(payload, data.images[i]);
            appendPlane(payload, data.masks[i]);
        });
}

DatasetManifest
writeShards(const RgbDataset &data, const std::string &dir,
            const PackOptions &options)
{
    const std::size_t rows = data.size() > 0 ? data.images[0][0].rows() : 0;
    const std::size_t cols = data.size() > 0 ? data.images[0][0].cols() : 0;
    return packDataset(
        ShardKind::Rgb, data.size(), data.num_classes, rows, cols, dir,
        options, [&](std::vector<unsigned char> &payload, std::size_t i) {
            for (std::size_t ch = 0; ch < 3; ++ch)
                appendPlane(payload, data.images[i][ch]);
            appendLabel(payload, data.labels[i]);
        });
}

ClassDataset
materializeClassDataset(const DatasetManifest &manifest)
{
    if (manifest.kind != ShardKind::Class)
        throw DataError("manifest " + manifest.dir +
                        "/manifest.json: expected a class dataset, got " +
                        shardKindName(manifest.kind));
    ClassDataset data;
    data.num_classes = manifest.num_classes;
    ShardBuffer buffer;
    for (std::size_t s = 0; s < manifest.shards.size(); ++s) {
        decodeShardInto(manifest, s, buffer);
        for (std::size_t i = 0; i < buffer.images.size(); ++i) {
            data.images.push_back(std::move(buffer.images[i]));
            data.labels.push_back(buffer.labels[i]);
        }
        buffer.images.clear();
    }
    return data;
}

SegDataset
materializeSegDataset(const DatasetManifest &manifest)
{
    if (manifest.kind != ShardKind::Seg)
        throw DataError("manifest " + manifest.dir +
                        "/manifest.json: expected a seg dataset, got " +
                        shardKindName(manifest.kind));
    SegDataset data;
    ShardBuffer buffer;
    for (std::size_t s = 0; s < manifest.shards.size(); ++s) {
        decodeShardInto(manifest, s, buffer);
        for (std::size_t i = 0; i < buffer.images.size(); ++i) {
            data.images.push_back(std::move(buffer.images[i]));
            data.masks.push_back(std::move(buffer.masks[i]));
        }
        buffer.images.clear();
        buffer.masks.clear();
    }
    return data;
}

RgbDataset
materializeRgbDataset(const DatasetManifest &manifest)
{
    if (manifest.kind != ShardKind::Rgb)
        throw DataError("manifest " + manifest.dir +
                        "/manifest.json: expected an rgb dataset, got " +
                        shardKindName(manifest.kind));
    RgbDataset data;
    data.num_classes = manifest.num_classes;
    ShardBuffer buffer;
    for (std::size_t s = 0; s < manifest.shards.size(); ++s) {
        decodeShardInto(manifest, s, buffer);
        for (std::size_t i = 0; i < buffer.rgb.size(); ++i) {
            data.images.push_back(std::move(buffer.rgb[i]));
            data.labels.push_back(buffer.labels[i]);
        }
        buffer.rgb.clear();
    }
    return data;
}

} // namespace lightridge
