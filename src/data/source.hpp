/**
 * @file
 * Polymorphic training-data sources and the deterministic two-level
 * epoch shuffle.
 *
 * A DataSource hides where training samples live: InMemory* sources wrap
 * the synthetic datasets exactly as before, Sharded* sources (stream.hpp)
 * decode shards off disk through an async prefetcher. Tasks read samples
 * through the typed accessors; the Session drives the epoch/staging
 * lifecycle on the main thread between batches, so the accessors stay
 * lock-free during compute.
 *
 * Determinism contract: the epoch order is a pure function of (seed,
 * shuffle flag, shard layout) via twoLevelEpochOrder(). A single-shard
 * layout consumes the rng exactly like the flat std::shuffle the engine
 * always used (shuffling a one-element shard list draws nothing), so
 * in-memory training is bit-for-bit unchanged; and any two sources with
 * the same shard layout — a ShardedDiskSource and an InMemorySource
 * preloaded from the same manifest — train bitwise identically at any
 * worker count, pipeline on or off.
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/dataset.hpp"
#include "utils/rng.hpp"

namespace lightridge {

/**
 * Sample order for one epoch: a seeded permutation of shard order, then
 * a seeded permutation of each shard's indices, concatenated in permuted
 * shard order. Batches therefore stream shard-major (at most two live
 * shards per batch boundary in steady state) while every sample still
 * moves every epoch. With a single shard this reduces exactly to the
 * flat `std::shuffle` order, drawing the same rng values.
 */
std::vector<std::size_t>
twoLevelEpochOrder(const std::vector<std::size_t> &shard_sizes, bool shuffle,
                   Rng *rng);

/**
 * Source-lifecycle interface the Session engine drives. All lifecycle
 * calls happen on the main thread with no trainer jobs in flight ("the
 * pool is idle here" — the same residency contract as the perturbation
 * realization); typed accessors (see ClassSource et al.) are then safe
 * to call concurrently from replica workers during the batch.
 */
class DataSource
{
  public:
    virtual ~DataSource();

    /** Total number of samples. */
    virtual std::size_t size() const = 0;

    /** Per-shard sample counts (the two-level shuffle layout). */
    virtual std::vector<std::size_t> shardSizes() const
    {
        return {size()};
    }

    /** Stable source-kind tag for reports ("memory" / "sharded"). */
    virtual const char *sourceKind() const = 0;

    /** Shards decoded ahead of the consumer (0 for in-memory). */
    virtual std::size_t prefetchDepth() const { return 0; }

    /** Payload bytes read off disk so far (0 for in-memory). */
    virtual std::uint64_t bytesRead() const { return 0; }

    /**
     * Start one epoch over the given sample order. The order vector must
     * outlive the epoch (the Session owns it).
     */
    virtual void beginEpoch(const std::vector<std::size_t> *order)
    {
        (void)order;
    }

    /**
     * Make samples order[lo..hi) resident and kick off prefetch of the
     * shards after them. Blocks until the range is decoded; called once
     * per batch, between batches.
     */
    virtual void stageRange(std::size_t lo, std::size_t hi)
    {
        (void)lo;
        (void)hi;
    }

    /**
     * Make samples with global indices [lo, hi) resident (synchronous;
     * the calibration probe's random-access path, usable outside an
     * epoch).
     */
    virtual void stageIndices(std::size_t lo, std::size_t hi)
    {
        (void)lo;
        (void)hi;
    }

    /** End the epoch; in-flight prefetches are drained, slots recycled. */
    virtual void endEpoch() {}
};

/** Classification samples: grayscale image + int label. */
class ClassSource : public DataSource
{
  public:
    virtual const RealMap &image(std::size_t i) const = 0;
    virtual int label(std::size_t i) const = 0;
    virtual std::size_t numClasses() const = 0;
};

/** Segmentation samples: image + target mask. */
class SegSource : public DataSource
{
  public:
    virtual const RealMap &image(std::size_t i) const = 0;
    virtual const RealMap &mask(std::size_t i) const = 0;
};

/** RGB classification samples: three channel planes + int label. */
class RgbSource : public DataSource
{
  public:
    virtual const std::array<RealMap, 3> &image(std::size_t i) const = 0;
    virtual int label(std::size_t i) const = 0;
    virtual std::size_t numClasses() const = 0;
};

/**
 * In-memory source over a borrowed dataset (must outlive the source).
 * An explicit shard layout makes a preloaded manifest train bitwise
 * identically to the streamed run over the same shards; the default
 * single-shard layout reproduces the engine's historical flat shuffle.
 */
class InMemoryClassSource : public ClassSource
{
  public:
    explicit InMemoryClassSource(const ClassDataset &data,
                                 std::vector<std::size_t> shard_sizes = {})
        : data_(data), shard_sizes_(std::move(shard_sizes))
    {}

    std::size_t size() const override { return data_.size(); }
    std::vector<std::size_t> shardSizes() const override
    {
        return shard_sizes_.empty() ? std::vector<std::size_t>{size()}
                                    : shard_sizes_;
    }
    const char *sourceKind() const override { return "memory"; }

    const RealMap &image(std::size_t i) const override
    {
        return data_.images[i];
    }
    int label(std::size_t i) const override { return data_.labels[i]; }
    std::size_t numClasses() const override { return data_.num_classes; }

  private:
    const ClassDataset &data_;
    std::vector<std::size_t> shard_sizes_;
};

/** In-memory segmentation source (see InMemoryClassSource). */
class InMemorySegSource : public SegSource
{
  public:
    explicit InMemorySegSource(const SegDataset &data,
                               std::vector<std::size_t> shard_sizes = {})
        : data_(data), shard_sizes_(std::move(shard_sizes))
    {}

    std::size_t size() const override { return data_.size(); }
    std::vector<std::size_t> shardSizes() const override
    {
        return shard_sizes_.empty() ? std::vector<std::size_t>{size()}
                                    : shard_sizes_;
    }
    const char *sourceKind() const override { return "memory"; }

    const RealMap &image(std::size_t i) const override
    {
        return data_.images[i];
    }
    const RealMap &mask(std::size_t i) const override
    {
        return data_.masks[i];
    }

  private:
    const SegDataset &data_;
    std::vector<std::size_t> shard_sizes_;
};

/** In-memory RGB source (see InMemoryClassSource). */
class InMemoryRgbSource : public RgbSource
{
  public:
    explicit InMemoryRgbSource(const RgbDataset &data,
                               std::vector<std::size_t> shard_sizes = {})
        : data_(data), shard_sizes_(std::move(shard_sizes))
    {}

    std::size_t size() const override { return data_.size(); }
    std::vector<std::size_t> shardSizes() const override
    {
        return shard_sizes_.empty() ? std::vector<std::size_t>{size()}
                                    : shard_sizes_;
    }
    const char *sourceKind() const override { return "memory"; }

    const std::array<RealMap, 3> &image(std::size_t i) const override
    {
        return data_.images[i];
    }
    int label(std::size_t i) const override { return data_.labels[i]; }
    std::size_t numClasses() const override { return data_.num_classes; }

  private:
    const RgbDataset &data_;
    std::vector<std::size_t> shard_sizes_;
};

} // namespace lightridge
