#include "data/synth_digits.hpp"

#include <array>
#include <cmath>
#include <vector>

#include "data/raster.hpp"
#include "utils/rng.hpp"

namespace lightridge {

namespace {

/** One stroke in normalized [0,1]^2 template space (row, col). */
struct Stroke
{
    Real r0, c0, r1, c1;
};

/**
 * Stroke templates. Digits are drawn in a seven-segment-inspired style
 * with per-digit modifications (diagonals, half-height bars) so the ten
 * classes are geometrically distinct.
 */
const std::vector<Stroke> &
digitStrokes(int label)
{
    // Segment endpoints in template space.
    // Corners: TL(0.1,0.2) TR(0.1,0.8) ML(0.5,0.2) MR(0.5,0.8)
    //          BL(0.9,0.2) BR(0.9,0.8)
    static const std::array<std::vector<Stroke>, 10> table = {{
        // 0: rectangle outline + diagonal accent
        {{0.1, 0.2, 0.1, 0.8}, {0.1, 0.8, 0.9, 0.8}, {0.9, 0.8, 0.9, 0.2},
         {0.9, 0.2, 0.1, 0.2}, {0.75, 0.3, 0.25, 0.7}},
        // 1: vertical stroke + flag
        {{0.1, 0.55, 0.9, 0.55}, {0.1, 0.55, 0.3, 0.3}},
        // 2: top bar, right upper, middle, left lower, bottom bar
        {{0.1, 0.2, 0.1, 0.8}, {0.1, 0.8, 0.5, 0.8}, {0.5, 0.8, 0.5, 0.2},
         {0.5, 0.2, 0.9, 0.2}, {0.9, 0.2, 0.9, 0.8}},
        // 3: top, middle, bottom bars + right side
        {{0.1, 0.2, 0.1, 0.8}, {0.5, 0.35, 0.5, 0.8}, {0.9, 0.2, 0.9, 0.8},
         {0.1, 0.8, 0.9, 0.8}},
        // 4: left upper, middle bar, full right vertical
        {{0.1, 0.2, 0.5, 0.2}, {0.5, 0.2, 0.5, 0.8}, {0.1, 0.8, 0.9, 0.8}},
        // 5: mirror of 2
        {{0.1, 0.8, 0.1, 0.2}, {0.1, 0.2, 0.5, 0.2}, {0.5, 0.2, 0.5, 0.8},
         {0.5, 0.8, 0.9, 0.8}, {0.9, 0.8, 0.9, 0.2}},
        // 6: like 5 plus lower-left vertical
        {{0.1, 0.8, 0.1, 0.2}, {0.1, 0.2, 0.9, 0.2}, {0.5, 0.2, 0.5, 0.8},
         {0.5, 0.8, 0.9, 0.8}, {0.9, 0.8, 0.9, 0.2}},
        // 7: top bar + long diagonal
        {{0.1, 0.2, 0.1, 0.8}, {0.1, 0.8, 0.9, 0.35}},
        // 8: full rectangle + middle bar
        {{0.1, 0.2, 0.1, 0.8}, {0.1, 0.8, 0.9, 0.8}, {0.9, 0.8, 0.9, 0.2},
         {0.9, 0.2, 0.1, 0.2}, {0.5, 0.2, 0.5, 0.8}},
        // 9: like 8 without lower-left
        {{0.1, 0.2, 0.1, 0.8}, {0.1, 0.8, 0.9, 0.8}, {0.5, 0.2, 0.5, 0.8},
         {0.1, 0.2, 0.5, 0.2}, {0.9, 0.8, 0.9, 0.5}},
    }};
    return table[label];
}

} // namespace

RealMap
renderDigit(int label, const DigitConfig &config, Rng *rng)
{
    const std::size_t n = config.image_size;
    RealMap img(n, n, 0.0);

    // Per-sample affine jitter.
    const Real angle = rng->uniform(-config.rotation_deg, config.rotation_deg)
                       * kPi / 180.0;
    const Real scale = 1.0 + rng->uniform(-config.scale_jitter,
                                          config.scale_jitter);
    const Real dr = rng->uniform(-config.shift_px, config.shift_px);
    const Real dc = rng->uniform(-config.shift_px, config.shift_px);
    const Real thickness = rng->uniform(1.4, 2.4) *
                           (static_cast<Real>(n) / 28.0);
    const Real cos_a = std::cos(angle), sin_a = std::sin(angle);
    const Real extent = static_cast<Real>(n) * 0.86; // template -> pixels

    auto map_point = [&](Real tr, Real tc, Real *pr, Real *pc) {
        // Center template, rotate, scale, translate into pixel space.
        Real cr = (tr - 0.5) * extent * scale;
        Real cc = (tc - 0.5) * extent * scale;
        *pr = cos_a * cr - sin_a * cc + n / 2.0 + dr;
        *pc = sin_a * cr + cos_a * cc + n / 2.0 + dc;
    };

    for (const Stroke &s : digitStrokes(label)) {
        Real r0, c0, r1, c1;
        map_point(s.r0, s.c0, &r0, &c0);
        map_point(s.r1, s.c1, &r1, &c1);
        drawLine(&img, r0, c0, r1, c1, thickness);
    }

    if (config.noise > 0)
        for (std::size_t i = 0; i < img.size(); ++i)
            img[i] = std::clamp<Real>(
                img[i] + rng->uniform(-config.noise, config.noise), 0, 1);

    if (config.binarize)
        for (std::size_t i = 0; i < img.size(); ++i)
            img[i] = img[i] >= 0.5 ? 1.0 : 0.0;

    return img;
}

ClassDataset
makeSynthDigits(std::size_t count, uint64_t seed, const DigitConfig &config)
{
    Rng rng(seed);
    ClassDataset data;
    data.num_classes = 10;
    data.images.reserve(count);
    data.labels.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        int label = static_cast<int>(i % 10);
        data.images.push_back(renderDigit(label, config, &rng));
        data.labels.push_back(label);
    }
    return data;
}

} // namespace lightridge
