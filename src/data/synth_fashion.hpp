/**
 * @file
 * Procedural FashionMNIST-like dataset ("SynthFashion"): ten garment
 * silhouette classes rendered as filled shapes with per-sample jitter.
 * Class list mirrors FashionMNIST: t-shirt, trouser, pullover, dress,
 * coat, sandal, shirt, sneaker, bag, ankle boot.
 */
#pragma once

#include <cstdint>

#include "core/dataset.hpp"
#include "utils/rng.hpp"

namespace lightridge {

/** Generation knobs for the synthetic fashion dataset. */
struct FashionConfig
{
    std::size_t image_size = 28;
    Real scale_jitter = 0.12;
    Real shift_px = 1.5;
    Real noise = 0.03;
};

/** Render one garment silhouette (label in 0..9). */
RealMap renderFashion(int label, const FashionConfig &config, Rng *rng);

/** Balanced dataset of `count` samples, deterministic by seed. */
ClassDataset makeSynthFashion(std::size_t count, uint64_t seed,
                              const FashionConfig &config = {});

} // namespace lightridge
