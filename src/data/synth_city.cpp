#include "data/synth_city.hpp"

#include <cmath>

#include "data/raster.hpp"
#include "utils/rng.hpp"

namespace lightridge {

void
renderCityScene(const CityConfig &config, Rng *rng, RealMap *image,
                RealMap *mask)
{
    const std::size_t n = config.image_size;
    *image = RealMap(n, n, 0.0);
    *mask = RealMap(n, n, 0.0);

    // Sky: soft dark gradient (overcast CityScapes-style scenes; the
    // bright dominant structures are the building facades).
    for (std::size_t r = 0; r < n; ++r) {
        Real v = 0.40 - 0.20 * static_cast<Real>(r) / n;
        for (std::size_t c = 0; c < n; ++c)
            (*image)(r, c) = v;
    }

    // Road band at the bottom.
    std::size_t road_top = static_cast<std::size_t>(n * rng->uniform(0.8, 0.9));
    for (std::size_t r = road_top; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            (*image)(r, c) = 0.15;

    // Buildings: rectangles from a ground line up, with window texture.
    std::size_t count = static_cast<std::size_t>(
        rng->randint(static_cast<int64_t>(config.min_buildings),
                     static_cast<int64_t>(config.max_buildings)));
    for (std::size_t b = 0; b < count; ++b) {
        int width = static_cast<int>(rng->uniform(0.12, 0.3) * n);
        int c0 = static_cast<int>(rng->uniform(0.0, 1.0) * n) - width / 2;
        int top = static_cast<int>(rng->uniform(0.15, 0.55) * n);
        int bottom = static_cast<int>(road_top) - 1;
        Real shade = rng->uniform(0.7, 0.95);
        for (int r = top; r <= bottom; ++r)
            for (int c = std::max(c0, 0);
                 c <= std::min<int>(c0 + width, static_cast<int>(n) - 1);
                 ++c) {
                (*image)(r, c) = shade;
                (*mask)(r, c) = 1.0;
            }
        // Window grid darkens the facade.
        for (int r = top + 2; r < bottom - 1; r += 5)
            for (int c = c0 + 2; c < c0 + width - 1; c += 5) {
                if (c < 0 || c + 1 >= static_cast<int>(n) ||
                    r + 1 >= static_cast<int>(n))
                    continue;
                (*image)(r, c) = 0.45;
                (*image)(r, c + 1) = 0.45;
                (*image)(r + 1, c) = 0.45;
            }
    }

    if (config.noise > 0)
        for (std::size_t i = 0; i < image->size(); ++i)
            (*image)[i] = std::clamp<Real>(
                (*image)[i] + rng->uniform(-config.noise, config.noise), 0, 1);
}

SegDataset
makeSynthCity(std::size_t count, uint64_t seed, const CityConfig &config)
{
    Rng rng(seed);
    SegDataset data;
    data.images.reserve(count);
    data.masks.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        RealMap image, mask;
        renderCityScene(config, &rng, &image, &mask);
        data.images.push_back(std::move(image));
        data.masks.push_back(std::move(mask));
    }
    return data;
}

} // namespace lightridge
