#include "data/synth_fashion.hpp"

#include <cmath>

#include "data/raster.hpp"
#include "utils/rng.hpp"

namespace lightridge {

namespace {

/** Draw one garment class into a unit-jittered 28-based pixel space. */
void
drawGarment(RealMap *img, int label, Real s, Real dr, Real dc, Rng *rng)
{
    auto R = [&](Real v) { return v * s + dr; };
    auto C = [&](Real v) { return v * s + dc; };
    const Real body = rng->uniform(0.75, 1.0);

    switch (label) {
      case 0: // t-shirt: torso + short sleeves
        fillRect(img, R(8), C(9), R(22), C(19), body);
        fillTriangle(img, R(8), C(9), R(8), C(3), R(13), C(9), body);
        fillTriangle(img, R(8), C(19), R(8), C(25), R(13), C(19), body);
        break;
      case 1: // trouser: two legs
        fillRect(img, R(4), C(9), R(9), C(19), body);
        fillRect(img, R(9), C(9), R(24), C(13), body);
        fillRect(img, R(9), C(15), R(24), C(19), body);
        break;
      case 2: // pullover: torso + long sleeves
        fillRect(img, R(7), C(9), R(23), C(19), body);
        fillRect(img, R(7), C(3), R(21), C(8), body * 0.9);
        fillRect(img, R(7), C(20), R(21), C(25), body * 0.9);
        break;
      case 3: // dress: narrow top flaring to wide hem
        fillTriangle(img, R(5), C(11), R(5), C(17), R(24), C(23), body);
        fillTriangle(img, R(5), C(11), R(24), C(5), R(24), C(23), body);
        break;
      case 4: // coat: long torso, long sleeves, collar gap
        fillRect(img, R(5), C(8), R(25), C(20), body);
        fillRect(img, R(5), C(3), R(23), C(7), body * 0.9);
        fillRect(img, R(5), C(21), R(23), C(25), body * 0.9);
        fillRect(img, R(5), C(13), R(12), C(15), 0.0); // collar notch
        break;
      case 5: // sandal: sole + two straps
        fillRect(img, R(19), C(4), R(23), C(24), body);
        drawLine(img, R(19), C(7), R(12), C(14), 1.6 * s, body);
        drawLine(img, R(12), C(14), R(19), C(21), 1.6 * s, body);
        break;
      case 6: // shirt: torso + sleeves + button line
        fillRect(img, R(7), C(9), R(24), C(19), body);
        fillTriangle(img, R(7), C(9), R(7), C(4), R(14), C(9), body * 0.9);
        fillTriangle(img, R(7), C(19), R(7), C(24), R(14), C(19),
                     body * 0.9);
        drawLine(img, R(8), C(14), R(23), C(14), 0.8 * s, 0.0);
        break;
      case 7: // sneaker: low profile with toe rise
        fillRect(img, R(16), C(4), R(22), C(24), body);
        fillTriangle(img, R(16), C(4), R(11), C(10), R(16), C(14), body);
        fillRect(img, R(22), C(4), R(24), C(24), body * 0.6); // sole
        break;
      case 8: // bag: box + handle arc
        fillRect(img, R(11), C(5), R(24), C(23), body);
        strokeEllipse(img, R(10), C(14), 5.0 * s, 6.0 * s, 1.5 * s, body);
        break;
      case 9: // ankle boot: tall shaft + foot
        fillRect(img, R(6), C(13), R(22), C(21), body);
        fillRect(img, R(17), C(4), R(22), C(21), body);
        fillRect(img, R(22), C(4), R(24), C(21), body * 0.6);
        break;
      default:
        break;
    }
}

} // namespace

RealMap
renderFashion(int label, const FashionConfig &config, Rng *rng)
{
    const std::size_t n = config.image_size;
    RealMap img(n, n, 0.0);
    const Real base_scale = static_cast<Real>(n) / 28.0;
    const Real s = base_scale *
                   (1.0 + rng->uniform(-config.scale_jitter,
                                       config.scale_jitter));
    const Real dr = rng->uniform(-config.shift_px, config.shift_px) +
                    (n - 28.0 * s / base_scale * base_scale) / 2.0;
    const Real dc = rng->uniform(-config.shift_px, config.shift_px) +
                    (n - 28.0 * s / base_scale * base_scale) / 2.0;
    drawGarment(&img, label, s, dr, dc, rng);

    if (config.noise > 0)
        for (std::size_t i = 0; i < img.size(); ++i)
            img[i] = std::clamp<Real>(
                img[i] + rng->uniform(-config.noise, config.noise), 0, 1);
    return img;
}

ClassDataset
makeSynthFashion(std::size_t count, uint64_t seed,
                 const FashionConfig &config)
{
    Rng rng(seed);
    ClassDataset data;
    data.num_classes = 10;
    data.images.reserve(count);
    data.labels.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        int label = static_cast<int>(i % 10);
        data.images.push_back(renderFashion(label, config, &rng));
        data.labels.push_back(label);
    }
    return data;
}

} // namespace lightridge
