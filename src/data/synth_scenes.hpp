/**
 * @file
 * Procedural Places365-like RGB scene dataset ("SynthPlaces").
 *
 * Six environment-type classes (the paper's Table 5 classifies Places365
 * by type of environment) with class-specific RGB structure: beach,
 * forest, city, mountain, desert, night. Channels carry genuinely
 * different information so the multi-channel RGB-DONN (Fig. 12) has
 * something to exploit over a grayscale baseline.
 */
#pragma once

#include <cstdint>

#include "core/dataset.hpp"
#include "utils/rng.hpp"

namespace lightridge {

/** Generation knobs for the synthetic scene dataset. */
struct SceneConfig
{
    std::size_t image_size = 64;
    std::size_t num_classes = 6; ///< up to 6
    Real noise = 0.03;
};

/** Names of the scene classes in label order. */
const char *sceneClassName(int label);

/** Render one RGB scene (channels ordered R, G, B). */
std::array<RealMap, 3> renderScene(int label, const SceneConfig &config,
                                   Rng *rng);

/** Balanced RGB dataset of `count` samples, deterministic by seed. */
RgbDataset makeSynthScenes(std::size_t count, uint64_t seed,
                           const SceneConfig &config = {});

/** Grayscale collapse of an RGB sample (baseline input). */
RealMap toGrayscale(const std::array<RealMap, 3> &rgb);

} // namespace lightridge
