/**
 * @file
 * On-disk dataset format: binary sample shards + a JSON manifest.
 *
 * A packed dataset is a directory holding one `manifest.json` and N
 * binary shard files. Each shard carries a fixed header (magic, format
 * version, sample kind, image shape, sample count, payload size, FNV-1a
 * checksum) followed by the sample records; the manifest mirrors the
 * per-shard metadata so loaders can validate a corpus without touching
 * the payload bytes, per the checkpoint-header convention in
 * core/model.hpp. Pixels are stored as raw `Real` (8-byte IEEE double,
 * host/little endian) so a round trip is bitwise — the streamed-training
 * parity contract depends on it.
 *
 * Record layouts (per sample):
 *   class: rows*cols doubles, then one int32 label
 *   seg:   rows*cols image doubles, rows*cols mask doubles
 *   rgb:   3 * rows*cols channel doubles, then one int32 label
 */
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "utils/json.hpp"

namespace lightridge {

/**
 * Error raised by shard/manifest readers and writers. Messages always
 * name the offending file so `lightridge_run`/`lightridge_data` can exit
 * 2 with an actionable diagnostic (the serve-manifest convention).
 */
class DataError : public std::runtime_error
{
  public:
    explicit DataError(const std::string &what) : std::runtime_error(what) {}
};

/** Shard file magic (8 bytes, NUL-padded) and current format version. */
inline constexpr char kShardMagic[8] = {'L', 'R', 'S', 'H',
                                        'A', 'R', 'D', '\0'};
inline constexpr std::uint32_t kShardVersion = 1;
inline constexpr const char *kManifestFormat = "lightridge-dataset";
inline constexpr int kManifestVersion = 1;

/** Sample kind stored in a shard (wire values are stable). */
enum class ShardKind : std::uint32_t { Class = 0, Seg = 1, Rgb = 2 };

/** Stable name of a shard kind ("class" / "seg" / "rgb"). */
const char *shardKindName(ShardKind kind);

/** Parse a shard kind name; throws DataError on an unknown name. */
ShardKind shardKindFromName(const std::string &name);

/** FNV-1a 64-bit checksum (the shard payload digest). */
std::uint64_t fnv1a64(const void *data, std::size_t bytes);

/** Metadata of one shard file as recorded in the manifest. */
struct ShardInfo
{
    std::string file;           ///< path relative to the manifest
    std::size_t samples = 0;
    std::uint64_t bytes = 0;    ///< payload bytes (header excluded)
    std::uint64_t checksum = 0; ///< FNV-1a over the payload
};

/** Parsed dataset manifest (shard paths still relative). */
struct DatasetManifest
{
    ShardKind kind = ShardKind::Class;
    std::size_t num_classes = 0; ///< 0 for seg datasets
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::size_t samples = 0;     ///< total across shards
    std::vector<ShardInfo> shards;

    /** Directory the manifest was loaded from ("" until loaded). */
    std::string dir;

    /** Absolute-ish path of shard s (dir-joined). */
    std::string shardPath(std::size_t s) const;

    /** Per-shard sample counts (the two-level shuffle layout). */
    std::vector<std::size_t> shardSizes() const;

    Json toJson() const;

    /**
     * Strict parse: unknown keys, a wrong format tag, or a future
     * version throw DataError naming `origin`.
     */
    static DatasetManifest fromJson(const Json &j, const std::string &origin);

    /** Load + parse `dir`-resolved manifest file. */
    static DatasetManifest load(const std::string &path);
};

/**
 * In-memory view of one decoded shard. Storage is reused across loads
 * (decodeShardInto resizes, never reallocates once warm), which is what
 * keeps the prefetcher's steady state allocation-free.
 */
struct ShardBuffer
{
    std::vector<RealMap> images;                ///< class/seg samples
    std::vector<RealMap> masks;                 ///< seg only
    std::vector<std::array<RealMap, 3>> rgb;    ///< rgb samples
    std::vector<int> labels;                    ///< class/rgb only
};

/**
 * Read and decode one shard file into `out`, validating the header
 * against the manifest entry (shape, kind, sample count, payload bytes)
 * and the payload checksum. Reuses `out`'s storage; allocates no Fields.
 * @throws DataError naming the shard on any mismatch or short read
 */
void decodeShardInto(const DatasetManifest &manifest, std::size_t shard,
                     ShardBuffer &out);

/**
 * Validate every shard of a manifest (headers + checksums) without
 * retaining the decoded data.
 * @throws DataError naming the first offending shard
 */
void validateManifest(const DatasetManifest &manifest);

/**
 * Header-only pass over every shard: existence, magic, version, kind,
 * shape, sample count, and payload size are checked without reading the
 * payloads. The cheap startup validation streamed training runs before
 * touching the model; checksums are still verified on decode.
 * @throws DataError naming the first offending shard
 */
void verifyShardHeaders(const DatasetManifest &manifest);

/** Options for writeShards (shard count is derived from shard_samples). */
struct PackOptions
{
    std::size_t shard_samples = 0; ///< samples per shard; 0 = one shard
};

/**
 * Pack a dataset into `dir` as shard files + manifest.json. Returns the
 * written manifest (dir resolved). Samples keep their order: global
 * index i lands in shard i / shard_samples at offset i % shard_samples.
 * @throws DataError on I/O failure
 */
DatasetManifest writeShards(const ClassDataset &data, const std::string &dir,
                            const PackOptions &options = {});
DatasetManifest writeShards(const SegDataset &data, const std::string &dir,
                            const PackOptions &options = {});
DatasetManifest writeShards(const RgbDataset &data, const std::string &dir,
                            const PackOptions &options = {});

/**
 * Load an entire manifest into memory (validating every shard). The
 * preload path of sharded specs and the test-split loader.
 */
ClassDataset materializeClassDataset(const DatasetManifest &manifest);
SegDataset materializeSegDataset(const DatasetManifest &manifest);
RgbDataset materializeRgbDataset(const DatasetManifest &manifest);

} // namespace lightridge
