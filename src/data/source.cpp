#include "data/source.hpp"

#include <algorithm>
#include <numeric>

namespace lightridge {

DataSource::~DataSource() = default;

std::vector<std::size_t>
twoLevelEpochOrder(const std::vector<std::size_t> &shard_sizes, bool shuffle,
                   Rng *rng)
{
    // Shard start offsets in global index space.
    std::vector<std::size_t> offsets(shard_sizes.size(), 0);
    std::size_t total = 0;
    for (std::size_t s = 0; s < shard_sizes.size(); ++s) {
        offsets[s] = total;
        total += shard_sizes[s];
    }

    std::vector<std::size_t> shard_order(shard_sizes.size());
    std::iota(shard_order.begin(), shard_order.end(), std::size_t{0});
    if (shuffle)
        std::shuffle(shard_order.begin(), shard_order.end(), rng->engine());

    // Intra-shard permutations are drawn in permuted shard order: for a
    // single shard, the shard-order shuffle above consumes no rng draws
    // (std::shuffle of one element is a no-op), so the sequence below is
    // exactly the historical flat std::shuffle over all indices.
    std::vector<std::size_t> order;
    order.reserve(total);
    for (std::size_t s : shard_order) {
        const std::size_t begin = order.size();
        for (std::size_t i = 0; i < shard_sizes[s]; ++i)
            order.push_back(offsets[s] + i);
        if (shuffle)
            std::shuffle(order.begin() + begin, order.end(), rng->engine());
    }
    return order;
}

} // namespace lightridge
