/**
 * @file
 * Sharded on-disk training sources with a double-buffered async
 * prefetcher.
 *
 * ShardStream drives residency for one manifest: the Session stages each
 * batch between batches (main thread, no trainer jobs in flight), and
 * the stream decodes the shards the batch spans — plus `prefetch` shards
 * of lookahead — into a ring of reusable slot buffers. Decode jobs ride
 * the global ThreadPool (ThreadPool::enqueue degrades to inline decode
 * on a 0-worker pool), so while the trainer consumes shard t the pool is
 * already decoding shard t+1. Slot buffers are recycled arena-style
 * across shards and epochs: after the first epoch warms the ring, a
 * steady-state streamed train step performs zero Field allocations (the
 * decode path is RealMap-only by construction, and the lint rule
 * zero-alloc-hot-path watches it).
 *
 * Concurrency contract: all lifecycle calls (beginEpoch / stageRange /
 * stageIndices / endEpoch) are main-thread-only; the shard-to-slot map
 * mutates only there. Decode jobs touch only their own slot's buffer and
 * the mutex-guarded state word. Sample accessors are lock-free reads of
 * slots staged Ready before the batch launched.
 */
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "data/shard.hpp"
#include "data/source.hpp"
#include "utils/sync.hpp"

namespace lightridge {

/** Residency engine shared by the three sharded source kinds. */
class ShardStream
{
  public:
    /**
     * @param manifest loaded manifest (shard headers are verified now,
     *        so missing/mismatched shard files fail at construction)
     * @param prefetch shards decoded ahead of the consumer (0 =
     *        synchronous loads, 1 = classic double buffering)
     */
    explicit ShardStream(DatasetManifest manifest, std::size_t prefetch = 1);
    ~ShardStream();

    ShardStream(const ShardStream &) = delete;
    ShardStream &operator=(const ShardStream &) = delete;

    const DatasetManifest &manifest() const { return manifest_; }
    std::size_t size() const { return manifest_.samples; }
    std::vector<std::size_t> shardSizes() const
    {
        return manifest_.shardSizes();
    }
    std::size_t prefetchDepth() const { return prefetch_; }

    /** Shard payload bytes decoded so far (re-decodes count). */
    std::uint64_t bytesRead() const LIGHTRIDGE_EXCLUDES(mutex_);

    void beginEpoch(const std::vector<std::size_t> *order)
        LIGHTRIDGE_EXCLUDES(mutex_);
    void stageRange(std::size_t lo, std::size_t hi)
        LIGHTRIDGE_EXCLUDES(mutex_);
    void stageIndices(std::size_t lo, std::size_t hi)
        LIGHTRIDGE_EXCLUDES(mutex_);
    void endEpoch() LIGHTRIDGE_EXCLUDES(mutex_);

    /**
     * Buffer holding global sample `i` (must be staged), with its local
     * index within the buffer written to `local`. Lock-free.
     */
    const ShardBuffer &locate(std::size_t i, std::size_t &local) const;

  private:
    enum class SlotState { Free, Loading, Ready, Failed };

    /** One ring slot: a decoded shard (storage reused across loads). */
    struct Slot
    {
        std::size_t shard = SIZE_MAX;
        std::size_t run = SIZE_MAX;
        ShardBuffer buffer;
    };

    /** One maximal span of consecutive order positions in one shard. */
    struct Run
    {
        std::size_t shard = 0;
        std::size_t begin = 0; ///< first order position
        std::size_t end = 0;   ///< one past the last order position
        std::size_t slot = SIZE_MAX;
    };

    std::size_t shardOf(std::size_t global) const;
    std::size_t acquireSlot() LIGHTRIDGE_EXCLUDES(mutex_);
    void scheduleRun(std::size_t r) LIGHTRIDGE_EXCLUDES(mutex_);
    void waitRun(std::size_t r) LIGHTRIDGE_EXCLUDES(mutex_);
    void releaseRun(std::size_t r) LIGHTRIDGE_EXCLUDES(mutex_);
    void drainLoading() LIGHTRIDGE_EXCLUDES(mutex_);
    void releaseAllSlots() LIGHTRIDGE_EXCLUDES(mutex_);
    void decodeInline(std::size_t slot_index) LIGHTRIDGE_EXCLUDES(mutex_);

    DatasetManifest manifest_;
    std::size_t prefetch_;
    std::vector<std::size_t> prefix_; ///< shard start offsets (size k+1)

    // Main-thread state (lifecycle calls only).
    std::vector<std::unique_ptr<Slot>> slots_;
    std::vector<std::size_t> shard_slot_; ///< shard -> slot (SIZE_MAX none)
    std::vector<Run> runs_;
    std::size_t first_live_run_ = 0;
    std::size_t next_run_ = 0;
    const std::vector<std::size_t> *order_ = nullptr;

    // Shared with decode jobs.
    mutable Mutex mutex_;
    CondVar cv_;
    std::vector<SlotState> slot_state_ LIGHTRIDGE_GUARDED_BY(mutex_);
    std::size_t loading_ LIGHTRIDGE_GUARDED_BY(mutex_) = 0;
    std::exception_ptr error_ LIGHTRIDGE_GUARDED_BY(mutex_);
    std::uint64_t bytes_read_ LIGHTRIDGE_GUARDED_BY(mutex_) = 0;
};

/** Streaming classification source over a packed class dataset. */
class ShardedClassSource : public ClassSource
{
  public:
    explicit ShardedClassSource(DatasetManifest manifest,
                                std::size_t prefetch = 1);

    std::size_t size() const override { return stream_.size(); }
    std::vector<std::size_t> shardSizes() const override
    {
        return stream_.shardSizes();
    }
    const char *sourceKind() const override { return "sharded"; }
    std::size_t prefetchDepth() const override
    {
        return stream_.prefetchDepth();
    }
    std::uint64_t bytesRead() const override { return stream_.bytesRead(); }

    void beginEpoch(const std::vector<std::size_t> *order) override
    {
        stream_.beginEpoch(order);
    }
    void stageRange(std::size_t lo, std::size_t hi) override
    {
        stream_.stageRange(lo, hi);
    }
    void stageIndices(std::size_t lo, std::size_t hi) override
    {
        stream_.stageIndices(lo, hi);
    }
    void endEpoch() override { stream_.endEpoch(); }

    const RealMap &image(std::size_t i) const override
    {
        std::size_t local = 0;
        return stream_.locate(i, local).images[local];
    }
    int label(std::size_t i) const override
    {
        std::size_t local = 0;
        return stream_.locate(i, local).labels[local];
    }
    std::size_t numClasses() const override
    {
        return stream_.manifest().num_classes;
    }

  private:
    ShardStream stream_;
};

/** Streaming segmentation source over a packed seg dataset. */
class ShardedSegSource : public SegSource
{
  public:
    explicit ShardedSegSource(DatasetManifest manifest,
                              std::size_t prefetch = 1);

    std::size_t size() const override { return stream_.size(); }
    std::vector<std::size_t> shardSizes() const override
    {
        return stream_.shardSizes();
    }
    const char *sourceKind() const override { return "sharded"; }
    std::size_t prefetchDepth() const override
    {
        return stream_.prefetchDepth();
    }
    std::uint64_t bytesRead() const override { return stream_.bytesRead(); }

    void beginEpoch(const std::vector<std::size_t> *order) override
    {
        stream_.beginEpoch(order);
    }
    void stageRange(std::size_t lo, std::size_t hi) override
    {
        stream_.stageRange(lo, hi);
    }
    void stageIndices(std::size_t lo, std::size_t hi) override
    {
        stream_.stageIndices(lo, hi);
    }
    void endEpoch() override { stream_.endEpoch(); }

    const RealMap &image(std::size_t i) const override
    {
        std::size_t local = 0;
        return stream_.locate(i, local).images[local];
    }
    const RealMap &mask(std::size_t i) const override
    {
        std::size_t local = 0;
        return stream_.locate(i, local).masks[local];
    }

  private:
    ShardStream stream_;
};

/** Streaming RGB source over a packed rgb dataset. */
class ShardedRgbSource : public RgbSource
{
  public:
    explicit ShardedRgbSource(DatasetManifest manifest,
                              std::size_t prefetch = 1);

    std::size_t size() const override { return stream_.size(); }
    std::vector<std::size_t> shardSizes() const override
    {
        return stream_.shardSizes();
    }
    const char *sourceKind() const override { return "sharded"; }
    std::size_t prefetchDepth() const override
    {
        return stream_.prefetchDepth();
    }
    std::uint64_t bytesRead() const override { return stream_.bytesRead(); }

    void beginEpoch(const std::vector<std::size_t> *order) override
    {
        stream_.beginEpoch(order);
    }
    void stageRange(std::size_t lo, std::size_t hi) override
    {
        stream_.stageRange(lo, hi);
    }
    void stageIndices(std::size_t lo, std::size_t hi) override
    {
        stream_.stageIndices(lo, hi);
    }
    void endEpoch() override { stream_.endEpoch(); }

    const std::array<RealMap, 3> &image(std::size_t i) const override
    {
        std::size_t local = 0;
        return stream_.locate(i, local).rgb[local];
    }
    int label(std::size_t i) const override
    {
        std::size_t local = 0;
        return stream_.locate(i, local).labels[local];
    }
    std::size_t numClasses() const override
    {
        return stream_.manifest().num_classes;
    }

  private:
    ShardStream stream_;
};

} // namespace lightridge
