#include "baseline/lightpipes_like.hpp"

#include <cmath>
#include <stdexcept>

namespace lightridge {
namespace baseline {

LpField
lpBegin(std::size_t n, Real pitch, Real wavelength)
{
    LpField field;
    field.n = n;
    field.pitch = pitch;
    field.wavelength = wavelength;
    field.re.assign(n * n, 1.0);
    field.im.assign(n * n, 0.0);
    return field;
}

void
lpSetAmplitude(LpField *field, const RealMap &amplitude)
{
    if (amplitude.size() != field->re.size())
        throw std::invalid_argument("lpSetAmplitude: shape mismatch");
    for (std::size_t i = 0; i < amplitude.size(); ++i) {
        field->re[i] = amplitude[i];
        field->im[i] = 0.0;
    }
}

namespace {

/**
 * Textbook recursive mixed-radix DFT on split arrays. Twiddle factors are
 * recomputed with std::cos/std::sin at every recursion node (no plan), and
 * each node allocates fresh child buffers (no scratch reuse).
 */
void
recursiveDft(std::vector<Real> &re, std::vector<Real> &im, int sign)
{
    const std::size_t n = re.size();
    if (n <= 1)
        return;

    // Smallest factor.
    std::size_t p = n;
    for (std::size_t f = 2; f * f <= n; ++f)
        if (n % f == 0) {
            p = f;
            break;
        }
    const std::size_t m = n / p;

    if (p == n) {
        // Prime length: direct O(n^2) DFT.
        std::vector<Real> out_re(n, 0.0), out_im(n, 0.0);
        for (std::size_t k = 0; k < n; ++k)
            for (std::size_t t = 0; t < n; ++t) {
                Real angle = sign * kTwoPi *
                             static_cast<Real>((k * t) % n) /
                             static_cast<Real>(n);
                Real c = std::cos(angle), s = std::sin(angle);
                out_re[k] += re[t] * c - im[t] * s;
                out_im[k] += re[t] * s + im[t] * c;
            }
        re = std::move(out_re);
        im = std::move(out_im);
        return;
    }

    // Decimate into p interleaved subsequences (fresh allocations).
    std::vector<std::vector<Real>> sub_re(p), sub_im(p);
    for (std::size_t j = 0; j < p; ++j) {
        sub_re[j].resize(m);
        sub_im[j].resize(m);
        for (std::size_t i = 0; i < m; ++i) {
            sub_re[j][i] = re[j + i * p];
            sub_im[j][i] = im[j + i * p];
        }
        recursiveDft(sub_re[j], sub_im[j], sign);
    }

    // Combine with per-butterfly sin/cos (the "no planning" cost).
    for (std::size_t k = 0; k < m; ++k) {
        for (std::size_t t = 0; t < p; ++t) {
            Real acc_re = 0, acc_im = 0;
            for (std::size_t j = 0; j < p; ++j) {
                Real angle = sign * kTwoPi *
                             static_cast<Real>((j * (k + t * m)) % n) /
                             static_cast<Real>(n);
                Real c = std::cos(angle), s = std::sin(angle);
                acc_re += sub_re[j][k] * c - sub_im[j][k] * s;
                acc_im += sub_re[j][k] * s + sub_im[j][k] * c;
            }
            re[k + t * m] = acc_re;
            im[k + t * m] = acc_im;
        }
    }
}

} // namespace

void
lpFft1d(std::vector<Real> *re, std::vector<Real> *im, int sign)
{
    if (re->size() != im->size())
        throw std::invalid_argument("lpFft1d: split arrays differ");
    recursiveDft(*re, *im, sign);
    if (sign > 0) {
        const Real scale = Real(1) / static_cast<Real>(re->size());
        for (std::size_t i = 0; i < re->size(); ++i) {
            (*re)[i] *= scale;
            (*im)[i] *= scale;
        }
    }
}

void
lpFft2d(std::size_t n, std::vector<Real> *re, std::vector<Real> *im,
        int sign)
{
    if (re->size() != n * n)
        throw std::invalid_argument("lpFft2d: shape mismatch");
    // Rows (fresh buffers per row, LightPipes/numpy style).
    for (std::size_t r = 0; r < n; ++r) {
        std::vector<Real> row_re(re->begin() + r * n,
                                 re->begin() + (r + 1) * n);
        std::vector<Real> row_im(im->begin() + r * n,
                                 im->begin() + (r + 1) * n);
        lpFft1d(&row_re, &row_im, sign);
        std::copy(row_re.begin(), row_re.end(), re->begin() + r * n);
        std::copy(row_im.begin(), row_im.end(), im->begin() + r * n);
    }
    // Columns.
    for (std::size_t c = 0; c < n; ++c) {
        std::vector<Real> col_re(n), col_im(n);
        for (std::size_t r = 0; r < n; ++r) {
            col_re[r] = (*re)[r * n + c];
            col_im[r] = (*im)[r * n + c];
        }
        lpFft1d(&col_re, &col_im, sign);
        for (std::size_t r = 0; r < n; ++r) {
            (*re)[r * n + c] = col_re[r];
            (*im)[r * n + c] = col_im[r];
        }
    }
}

void
lpComplexMultiply(std::vector<Real> *ar, std::vector<Real> *ai,
                  const std::vector<Real> &br, const std::vector<Real> &bi)
{
    const std::size_t n = ar->size();
    // Four partial products in separate passes with temporaries, the way
    // split-array frameworks evaluate complex expressions.
    std::vector<Real> rr(n), ii(n), ri(n), ir(n);
    for (std::size_t i = 0; i < n; ++i)
        rr[i] = (*ar)[i] * br[i];
    for (std::size_t i = 0; i < n; ++i)
        ii[i] = (*ai)[i] * bi[i];
    for (std::size_t i = 0; i < n; ++i)
        ri[i] = (*ar)[i] * bi[i];
    for (std::size_t i = 0; i < n; ++i)
        ir[i] = (*ai)[i] * br[i];
    for (std::size_t i = 0; i < n; ++i)
        (*ar)[i] = rr[i] - ii[i];
    for (std::size_t i = 0; i < n; ++i)
        (*ai)[i] = ri[i] + ir[i];
}

void
lpForvard(LpField *field, Real z)
{
    const std::size_t n = field->n;
    const Real lambda = field->wavelength;
    const Real aperture = static_cast<Real>(n) * field->pitch;

    // Rebuild the angular-spectrum kernel from scratch (no caching).
    std::vector<Real> h_re(n * n), h_im(n * n);
    const Real inv_lambda_sq = 1.0 / (lambda * lambda);
    for (std::size_t r = 0; r < n; ++r) {
        Real kr = static_cast<Real>(r);
        if (r >= (n + 1) / 2)
            kr -= static_cast<Real>(n);
        Real fy = kr / aperture;
        for (std::size_t c = 0; c < n; ++c) {
            Real kc = static_cast<Real>(c);
            if (c >= (n + 1) / 2)
                kc -= static_cast<Real>(n);
            Real fx = kc / aperture;
            Real arg = inv_lambda_sq - fx * fx - fy * fy;
            if (arg >= 0) {
                Real phase = kTwoPi * z * std::sqrt(arg);
                h_re[r * n + c] = std::cos(phase);
                h_im[r * n + c] = std::sin(phase);
            } else {
                h_re[r * n + c] = std::exp(-kTwoPi * z * std::sqrt(-arg));
                h_im[r * n + c] = 0.0;
            }
        }
    }

    lpFft2d(n, &field->re, &field->im, -1);
    lpComplexMultiply(&field->re, &field->im, h_re, h_im);
    lpFft2d(n, &field->re, &field->im, +1);
}

void
lpSubPhase(LpField *field, const RealMap &phase)
{
    if (phase.size() != field->re.size())
        throw std::invalid_argument("lpSubPhase: shape mismatch");
    // Split-array phase application, again in separate passes.
    const std::size_t n = phase.size();
    std::vector<Real> pr(n), pi(n);
    for (std::size_t i = 0; i < n; ++i)
        pr[i] = std::cos(phase[i]);
    for (std::size_t i = 0; i < n; ++i)
        pi[i] = std::sin(phase[i]);
    lpComplexMultiply(&field->re, &field->im, pr, pi);
}

RealMap
lpIntensity(const LpField &field)
{
    RealMap out(field.n, field.n);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = field.re[i] * field.re[i] + field.im[i] * field.im[i];
    return out;
}

RealMap
lpDonnForward(const RealMap &input, const std::vector<RealMap> &phases,
              Real pitch, Real wavelength, Real z)
{
    LpField field = lpBegin(input.rows(), pitch, wavelength);
    lpSetAmplitude(&field, input);
    for (const RealMap &phase : phases) {
        lpForvard(&field, z);
        lpSubPhase(&field, phase);
    }
    lpForvard(&field, z);
    return lpIntensity(field);
}

Field
lpToField(const LpField &field)
{
    Field out(field.n, field.n);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = Complex{field.re[i], field.im[i]};
    return out;
}

} // namespace baseline
} // namespace lightridge
