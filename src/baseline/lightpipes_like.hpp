/**
 * @file
 * "LightPipes-like" baseline optical engine (paper Table 1, Figs. 8-9).
 *
 * This engine computes the same scalar-diffraction physics as the
 * LightRidge kernels but reproduces the computational structure of
 * general-purpose optics packages, which the paper identifies as the
 * runtime bottleneck for DONN workloads:
 *
 *  - no FFT planning: twiddle factors are recomputed with sin/cos on
 *    every call instead of cached tables;
 *  - no kernel caching: the free-space transfer function is rebuilt per
 *    propagation call;
 *  - no operator fusion: complex arithmetic runs on split real/imaginary
 *    arrays in multiple passes with temporary allocations (the
 *    tensor-representation limitation called out in Section 1).
 *
 * Comparing it against the planned, cached, fused LightRidge pipeline on
 * the same machine isolates exactly the optimization deltas the paper's
 * runtime evaluation measures.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/field.hpp"
#include "utils/types.hpp"

namespace lightridge {
namespace baseline {

/** Split-array complex field, LightPipes-style. */
struct LpField
{
    std::size_t n = 0;
    Real pitch = 0;
    Real wavelength = 0;
    std::vector<Real> re; // n*n
    std::vector<Real> im; // n*n
};

/** Begin(): uniform-amplitude field on an n-by-n grid. */
LpField lpBegin(std::size_t n, Real pitch, Real wavelength);

/** Load an intensity image onto the field amplitude (phase = 0). */
void lpSetAmplitude(LpField *field, const RealMap &amplitude);

/** Unplanned 1-D FFT (twiddles recomputed per call). sign=-1 forward. */
void lpFft1d(std::vector<Real> *re, std::vector<Real> *im, int sign);

/** Unplanned 2-D FFT over the split arrays. sign=-1 fwd, +1 inverse. */
void lpFft2d(std::size_t n, std::vector<Real> *re, std::vector<Real> *im,
             int sign);

/**
 * Multi-pass split-array complex Hadamard product:
 * (ar + j ai) *= (br + j bi), computed LightPipes-style with temporary
 * buffers for each partial product.
 */
void lpComplexMultiply(std::vector<Real> *ar, std::vector<Real> *ai,
                       const std::vector<Real> &br,
                       const std::vector<Real> &bi);

/**
 * Forvard(): angular-spectrum free-space propagation over distance z.
 * Rebuilds the transfer function every call.
 */
void lpForvard(LpField *field, Real z);

/** SubPhase(): apply a phase mask. */
void lpSubPhase(LpField *field, const RealMap &phase);

/** Intensity |E|^2. */
RealMap lpIntensity(const LpField &field);

/**
 * Full DONN forward emulation with the baseline engine: encode ->
 * (propagate, phase-modulate) x depth -> propagate -> intensity.
 * Used by the end-to-end runtime comparison (Fig. 9).
 */
RealMap lpDonnForward(const RealMap &input, const std::vector<RealMap> &phases,
                      Real pitch, Real wavelength, Real z);

/** Convert to the LightRidge Field type (for correctness cross-checks). */
Field lpToField(const LpField &field);

} // namespace baseline
} // namespace lightridge
