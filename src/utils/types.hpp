/**
 * @file
 * Fundamental scalar types and physical constants used across LightRidge.
 */
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace lightridge {

/** Floating-point type used for all optical field computations. */
using Real = double;

/** Complex scalar describing a wavefield sample E = A * exp(j * theta). */
using Complex = std::complex<Real>;

/** Imaginary unit. */
inline constexpr Complex kJ{0.0, 1.0};

/** Pi to double precision. */
inline constexpr Real kPi = 3.14159265358979323846;

/** Two pi. */
inline constexpr Real kTwoPi = 2.0 * kPi;

/** Speed of light in vacuum [m/s]; used by source/energy models. */
inline constexpr Real kSpeedOfLight = 299792458.0;

/** Wave number k = 2*pi / lambda for a wavelength in meters. */
inline constexpr Real
waveNumber(Real wavelength)
{
    return kTwoPi / wavelength;
}

} // namespace lightridge
