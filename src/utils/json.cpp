#include "utils/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace lightridge {

namespace {

/** Recursive-descent JSON parser over a string view. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    parseDocument()
    {
        Json value = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        throw JsonError("json parse error at " + std::to_string(pos_) + ": " +
                        why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() && std::isspace(
                   static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char get() { char c = peek(); ++pos_; return c; }

    void
    expect(char c)
    {
        if (get() != c)
            fail(std::string("expected '") + c + "'");
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Json(parseString());
          case 't':
            if (consumeLiteral("true")) return Json(true);
            fail("bad literal");
          case 'f':
            if (consumeLiteral("false")) return Json(false);
            fail("bad literal");
          case 'n':
            if (consumeLiteral("null")) return Json(nullptr);
            fail("bad literal");
          default:
            return parseNumber();
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            char c = get();
            if (c == '"')
                return out;
            if (c == '\\') {
                char e = get();
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    // Basic-multilingual-plane escapes only; encode as UTF-8.
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = get();
                        code <<= 4;
                        if (h >= '0' && h <= '9') code += h - '0';
                        else if (h >= 'a' && h <= 'f') code += 10 + h - 'a';
                        else if (h >= 'A' && h <= 'F') code += 10 + h - 'A';
                        else fail("bad \\u escape");
                    }
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default: fail("bad escape");
                }
            } else {
                out += c;
            }
        }
    }

    Json
    parseNumber()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        try {
            return Json(std::stod(text_.substr(start, pos_ - start)));
        } catch (const std::exception &) {
            fail("bad number");
        }
    }

    Json
    parseArray()
    {
        expect('[');
        Json::Array items;
        skipWs();
        if (peek() == ']') { get(); return Json(std::move(items)); }
        for (;;) {
            items.push_back(parseValue());
            skipWs();
            char c = get();
            if (c == ']')
                return Json(std::move(items));
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json::Object members;
        skipWs();
        if (peek() == '}') { get(); return Json(std::move(members)); }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            members[key] = parseValue();
            skipWs();
            char c = get();
            if (c == '}')
                return Json(std::move(members));
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

void
dumpString(const std::string &s, std::ostringstream &out)
{
    out << '"';
    for (char c : s) {
        switch (c) {
          case '"': out << "\\\""; break;
          case '\\': out << "\\\\"; break;
          case '\n': out << "\\n"; break;
          case '\r': out << "\\r"; break;
          case '\t': out << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out << buf;
            } else {
                out << c;
            }
        }
    }
    out << '"';
}

void
dumpNumber(double n, std::ostringstream &out)
{
    if (n == std::floor(n) && std::abs(n) < 1e15) {
        out << static_cast<long long>(n);
    } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", n);
        out << buf;
    }
}

void
dumpValue(const Json &v, std::ostringstream &out, int indent, int depth)
{
    auto pad = [&](int d) {
        if (indent >= 0) {
            out << '\n';
            for (int i = 0; i < d * 2; ++i)
                out << ' ';
        }
    };
    switch (v.type()) {
      case Json::Type::Null: out << "null"; break;
      case Json::Type::Bool: out << (v.asBool() ? "true" : "false"); break;
      case Json::Type::Number: dumpNumber(v.asNumber(), out); break;
      case Json::Type::String: dumpString(v.asString(), out); break;
      case Json::Type::Array: {
        const auto &items = v.asArray();
        if (items.empty()) { out << "[]"; break; }
        out << '[';
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (i) out << ',';
            pad(depth + 1);
            dumpValue(items[i], out, indent, depth + 1);
        }
        pad(depth);
        out << ']';
        break;
      }
      case Json::Type::Object: {
        const auto &members = v.asObject();
        if (members.empty()) { out << "{}"; break; }
        out << '{';
        std::size_t i = 0;
        for (const auto &[key, value] : members) {
            if (i++) out << ',';
            pad(depth + 1);
            dumpString(key, out);
            out << (indent >= 0 ? ": " : ":");
            dumpValue(value, out, indent, depth + 1);
        }
        pad(depth);
        out << '}';
        break;
      }
    }
}

} // namespace

std::string
Json::dump() const
{
    std::ostringstream out;
    dumpValue(*this, out, -1, 0);
    return out.str();
}

std::string
Json::pretty(int indent) const
{
    std::ostringstream out;
    dumpValue(*this, out, 2, indent);
    return out.str();
}

Json
Json::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

Json
Json::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw JsonError("cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str());
}

bool
Json::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << pretty() << '\n';
    return static_cast<bool>(out);
}

} // namespace lightridge
