#include "utils/log.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace lightridge {
namespace log_detail {

LogLevel &
globalLevel()
{
    static LogLevel level = LogLevel::Info;
    return level;
}

void
emit(LogLevel level, const std::string &msg)
{
    static std::mutex mutex;
    static const char *names[] = {"DEBUG", "INFO", "WARN", "ERROR", "OFF"};
    using clock = std::chrono::steady_clock;
    static const auto start = clock::now();
    double t = std::chrono::duration<double>(clock::now() - start).count();

    std::lock_guard<std::mutex> lock(mutex);
    std::fprintf(stderr, "[%8.3f] [%s] %s\n", t,
                 names[static_cast<int>(level)], msg.c_str());
}

} // namespace log_detail

void
setLogLevel(LogLevel level)
{
    log_detail::globalLevel() = level;
}

LogLevel
logLevel()
{
    return log_detail::globalLevel();
}

} // namespace lightridge
