/**
 * @file
 * Wall-clock timing utilities for the runtime benchmarks (Figs. 8-10).
 */
#pragma once

#include <chrono>

namespace lightridge {

/** Simple wall-clock stopwatch. */
class WallTimer
{
  public:
    WallTimer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = clock::now(); }

    /** Elapsed seconds since construction or last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    /** Elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

} // namespace lightridge
