/**
 * @file
 * Tiny command-line flag parser shared by examples and bench binaries.
 *
 * Supports --key=value and --key value forms plus boolean switches, and the
 * LR_BENCH_FULL environment toggle that switches every benchmark between
 * quick (CI-scale) and paper-scale parameters.
 */
#pragma once

#include <map>
#include <string>

namespace lightridge {

/** Parsed command line: flags plus positional arguments. */
class CliArgs
{
  public:
    CliArgs() = default;

    /** Parse argv. Unknown flags are stored; no schema required. */
    CliArgs(int argc, char **argv);

    /** True when --name was passed (with or without a value). */
    bool has(const std::string &name) const;

    /** String flag with fallback. */
    std::string getString(const std::string &name,
                          const std::string &fallback) const;

    /** Numeric flag with fallback. */
    double getDouble(const std::string &name, double fallback) const;

    /** Integer flag with fallback. */
    int getInt(const std::string &name, int fallback) const;

    /** Boolean flag: present without value, or =true/=1. */
    bool getBool(const std::string &name, bool fallback) const;

  private:
    std::map<std::string, std::string> flags_;
};

/**
 * True when the LR_BENCH_FULL environment variable requests paper-scale
 * benchmark parameters (any non-empty value other than "0").
 */
bool benchFullScale();

/**
 * Pick quick-scale or full-scale value depending on benchFullScale().
 * Keeps the bench sources readable: scaled(64, 200) etc.
 */
template <typename T>
T
scaled(T quick, T full)
{
    return benchFullScale() ? full : quick;
}

} // namespace lightridge
