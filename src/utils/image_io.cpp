#include "utils/image_io.hpp"

#include <algorithm>
#include <fstream>
#include <limits>

namespace lightridge {

namespace {

/** Skip whitespace and '#' comments in a PNM header stream. */
void
skipPnmJunk(std::istream &in)
{
    for (;;) {
        int c = in.peek();
        if (c == '#') {
            std::string line;
            std::getline(in, line);
        } else if (std::isspace(c)) {
            in.get();
        } else {
            return;
        }
    }
}

bool
readPnmHeader(std::istream &in, const char *magic, std::size_t *rows,
              std::size_t *cols)
{
    std::string tag;
    in >> tag;
    if (tag != magic)
        return false;
    skipPnmJunk(in);
    std::size_t w = 0, h = 0;
    int maxval = 0;
    in >> w;
    skipPnmJunk(in);
    in >> h;
    skipPnmJunk(in);
    in >> maxval;
    if (!in || w == 0 || h == 0 || maxval != 255)
        return false;
    in.get(); // single whitespace before raster
    *rows = h;
    *cols = w;
    return true;
}

} // namespace

bool
writePgm(const std::string &path, const GrayImage &image)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << "P5\n" << image.cols << " " << image.rows << "\n255\n";
    out.write(reinterpret_cast<const char *>(image.pixels.data()),
              static_cast<std::streamsize>(image.pixels.size()));
    return static_cast<bool>(out);
}

bool
readPgm(const std::string &path, GrayImage *image)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::size_t rows = 0, cols = 0;
    if (!readPnmHeader(in, "P5", &rows, &cols))
        return false;
    image->rows = rows;
    image->cols = cols;
    image->pixels.resize(rows * cols);
    in.read(reinterpret_cast<char *>(image->pixels.data()),
            static_cast<std::streamsize>(image->pixels.size()));
    return static_cast<bool>(in);
}

bool
writePpm(const std::string &path, const RgbImage &image)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << "P6\n" << image.cols << " " << image.rows << "\n255\n";
    out.write(reinterpret_cast<const char *>(image.pixels.data()),
              static_cast<std::streamsize>(image.pixels.size()));
    return static_cast<bool>(out);
}

bool
readPpm(const std::string &path, RgbImage *image)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::size_t rows = 0, cols = 0;
    if (!readPnmHeader(in, "P6", &rows, &cols))
        return false;
    image->rows = rows;
    image->cols = cols;
    image->pixels.resize(rows * cols * 3);
    in.read(reinterpret_cast<char *>(image->pixels.data()),
            static_cast<std::streamsize>(image->pixels.size()));
    return static_cast<bool>(in);
}

GrayImage
toGray(const std::vector<double> &values, std::size_t rows, std::size_t cols)
{
    GrayImage image;
    image.rows = rows;
    image.cols = cols;
    image.pixels.resize(rows * cols, 0);
    if (values.empty())
        return image;
    double lo = *std::min_element(values.begin(), values.end());
    double hi = *std::max_element(values.begin(), values.end());
    double span = hi - lo;
    if (span <= 0)
        return image;
    for (std::size_t i = 0; i < values.size() && i < image.pixels.size(); ++i) {
        double v = (values[i] - lo) / span * 255.0;
        image.pixels[i] = static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
    }
    return image;
}

} // namespace lightridge
