#include "utils/thread_pool.hpp"

#include <atomic>

namespace lightridge {

namespace {

thread_local bool t_inside_worker = false;

} // namespace

bool
ThreadPool::insideWorker()
{
    return t_inside_worker;
}

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        workers = hw > 1 ? hw : 0;
    }
    if (workers <= 1)
        workers = 0; // inline execution; a 1-thread pool only adds overhead
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::workerLoop()
{
    t_inside_worker = true;
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
            if (stop_ && jobs_.empty())
                return;
            job = std::move(jobs_.front());
            jobs_.pop();
        }
        job();
    }
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    if (threads_.empty()) {
        job();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobs_.push(std::move(job));
    }
    cv_.notify_one();
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (threads_.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // Shared completion state must outlive this frame: a shard that is not
    // the last one can still touch the counters after the last shard has
    // woken the caller, so the state block is owned jointly by every
    // queued job via shared_ptr, never by this stack frame.
    struct ForState
    {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::mutex mutex;
        std::condition_variable cv;
        std::exception_ptr error;
    };
    auto state = std::make_shared<ForState>();
    const std::size_t shards = std::min(count, threads_.size());

    auto shard = [state, shards, count, &fn] {
        for (;;) {
            std::size_t i = state->next.fetch_add(1);
            if (i >= count)
                break;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->mutex);
                if (!state->error)
                    state->error = std::current_exception();
                // Drain remaining iterations so the loop terminates fast.
                state->next.store(count);
            }
        }
        std::lock_guard<std::mutex> lock(state->mutex);
        if (++state->done == shards)
            state->cv.notify_one();
    };

    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t s = 0; s < shards; ++s)
            jobs_.push(shard);
    }
    cv_.notify_all();

    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] { return state->done.load() == shards; });
    if (state->error)
        std::rethrow_exception(state->error);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace lightridge
