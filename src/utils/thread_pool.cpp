#include "utils/thread_pool.hpp"

#include <atomic>
#include <memory>

namespace lightridge {

namespace {

thread_local bool t_inside_worker = false;

} // namespace

bool
ThreadPool::insideWorker()
{
    return t_inside_worker;
}

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        workers = hw > 1 ? hw : 0;
    }
    if (workers <= 1)
        workers = 0; // inline execution; a 1-thread pool only adds overhead
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::workerLoop()
{
    t_inside_worker = true;
    for (;;) {
        std::function<void()> job;
        {
            MutexLock lock(mutex_);
            while (!stop_ && jobs_.empty())
                cv_.wait(mutex_);
            if (stop_ && jobs_.empty())
                return;
            job = std::move(jobs_.front());
            jobs_.pop();
        }
        job();
    }
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    if (threads_.empty()) {
        job();
        return;
    }
    {
        MutexLock lock(mutex_);
        jobs_.push(std::move(job));
    }
    cv_.notify_one();
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (threads_.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // Shared completion state must outlive this frame: a shard that is not
    // the last one can still touch the counters after the last shard has
    // woken the caller, so the state block is owned jointly by every
    // queued job via shared_ptr, never by this stack frame.
    struct ForState
    {
        std::atomic<std::size_t> next{0};
        Mutex mutex;
        CondVar cv;
        std::size_t done LIGHTRIDGE_GUARDED_BY(mutex) = 0;
        std::exception_ptr error LIGHTRIDGE_GUARDED_BY(mutex);
    };
    auto state = std::make_shared<ForState>();
    const std::size_t shards = std::min(count, threads_.size());

    auto shard = [state, shards, count, &fn] {
        ForState &s = *state;
        for (;;) {
            std::size_t i = s.next.fetch_add(1);
            if (i >= count)
                break;
            try {
                fn(i);
            } catch (...) {
                MutexLock lock(s.mutex);
                if (!s.error)
                    s.error = std::current_exception();
                // Drain remaining iterations so the loop terminates fast.
                s.next.store(count);
            }
        }
        MutexLock lock(s.mutex);
        if (++s.done == shards)
            s.cv.notify_one();
    };

    {
        MutexLock lock(mutex_);
        for (std::size_t s = 0; s < shards; ++s)
            jobs_.push(shard);
    }
    cv_.notify_all();

    ForState &s = *state;
    MutexLock lock(s.mutex);
    while (s.done != shards)
        s.cv.wait(s.mutex);
    if (s.error)
        std::rethrow_exception(s.error);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

} // namespace lightridge
