/**
 * @file
 * Minimal JSON value type with parser and serializer.
 *
 * Backs the LightRidge DSL front end: model specifications, trained-weight
 * checkpoints, device response curves, and fabrication dumps are all stored
 * as JSON so they can be diffed, versioned, and loaded across tools.
 */
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace lightridge {

/** Error thrown on malformed JSON input or wrong-type access. */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &what) : std::runtime_error(what) {}
};

/** A JSON value: null, bool, number, string, array, or object. */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    Json() : type_(Type::Null) {}
    Json(std::nullptr_t) : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double n) : type_(Type::Number), number_(n) {}
    Json(int n) : type_(Type::Number), number_(n) {}
    Json(std::size_t n)
        : type_(Type::Number), number_(static_cast<double>(n))
    {}
    Json(const char *s) : type_(Type::String), string_(s) {}
    Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
    Json(Array a) : type_(Type::Array), array_(std::move(a)) {}
    Json(Object o) : type_(Type::Object), object_(std::move(o)) {}

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const { expect(Type::Bool); return bool_; }
    double asNumber() const { expect(Type::Number); return number_; }
    int asInt() const { return static_cast<int>(asNumber()); }
    const std::string &asString() const { expect(Type::String); return string_; }
    const Array &asArray() const { expect(Type::Array); return array_; }
    Array &asArray() { expect(Type::Array); return array_; }
    const Object &asObject() const { expect(Type::Object); return object_; }
    Object &asObject() { expect(Type::Object); return object_; }

    /** Object member access; creates members on mutable objects. */
    Json &
    operator[](const std::string &key)
    {
        if (type_ == Type::Null)
            type_ = Type::Object;
        expect(Type::Object);
        return object_[key];
    }

    /** Const object lookup; throws when the key is absent. */
    const Json &
    at(const std::string &key) const
    {
        expect(Type::Object);
        auto it = object_.find(key);
        if (it == object_.end())
            throw JsonError("missing key: " + key);
        return it->second;
    }

    /** True when this object has the given key. */
    bool
    has(const std::string &key) const
    {
        return type_ == Type::Object && object_.count(key) > 0;
    }

    /** Numeric lookup with default when the key is absent. */
    double
    numberOr(const std::string &key, double fallback) const
    {
        return has(key) ? at(key).asNumber() : fallback;
    }

    /** Append to an array value (null promotes to empty array). */
    void
    push(Json value)
    {
        if (type_ == Type::Null)
            type_ = Type::Array;
        expect(Type::Array);
        array_.push_back(std::move(value));
    }

    /** Serialize to a compact JSON string. */
    std::string dump() const;

    /** Serialize with 2-space indentation. */
    std::string pretty(int indent = 0) const;

    /** Parse a JSON document; throws JsonError on malformed input. */
    static Json parse(const std::string &text);

    /** Load/parse a JSON file; throws JsonError on failure. */
    static Json load(const std::string &path);

    /** Write pretty-printed JSON to a file. @return false on I/O failure. */
    bool save(const std::string &path) const;

  private:
    void
    expect(Type t) const
    {
        if (type_ != t)
            throw JsonError("json type mismatch");
    }

    Type type_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

} // namespace lightridge
