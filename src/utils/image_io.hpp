/**
 * @file
 * Binary PGM (P5) / PPM (P6) image reading and writing.
 *
 * LightRidge's visualization hooks (lr.layers.view() in the paper) dump
 * phase masks, detector patterns, and segmentation outputs as portable
 * graymap/pixmap files so results can be inspected without any GUI.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lightridge {

/** 8-bit grayscale image buffer (row major). */
struct GrayImage
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<uint8_t> pixels; // rows * cols

    uint8_t &at(std::size_t r, std::size_t c) { return pixels[r * cols + c]; }
    uint8_t at(std::size_t r, std::size_t c) const
    {
        return pixels[r * cols + c];
    }
};

/** 8-bit RGB image buffer (row major, interleaved). */
struct RgbImage
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<uint8_t> pixels; // rows * cols * 3
};

/** Write a binary PGM file. @return false on I/O failure. */
bool writePgm(const std::string &path, const GrayImage &image);

/** Read a binary PGM file. @return false on parse/I/O failure. */
bool readPgm(const std::string &path, GrayImage *image);

/** Write a binary PPM file. @return false on I/O failure. */
bool writePpm(const std::string &path, const RgbImage &image);

/** Read a binary PPM file. @return false on parse/I/O failure. */
bool readPpm(const std::string &path, RgbImage *image);

/**
 * Normalize an arbitrary real-valued buffer to 0..255 (min-max) and wrap it
 * in a GrayImage. Constant buffers map to 0.
 */
GrayImage toGray(const std::vector<double> &values, std::size_t rows,
                 std::size_t cols);

} // namespace lightridge
