/**
 * @file
 * Deterministic pseudo-random number generator facade.
 *
 * Every stochastic component in LightRidge (dataset synthesis, Gumbel
 * sampling, fabrication-variation injection, detector noise) draws from an
 * explicitly seeded Rng so that experiments are reproducible bit-for-bit.
 */
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

#include "utils/types.hpp"

namespace lightridge {

/** Seedable random source wrapping a 64-bit Mersenne twister. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x1d9e5u) : engine_(seed) {}

    /** Re-seed the underlying engine. */
    void reseed(uint64_t seed) { engine_.seed(seed); }

    /** Uniform real in [lo, hi). */
    Real
    uniform(Real lo = 0.0, Real hi = 1.0)
    {
        return std::uniform_real_distribution<Real>(lo, hi)(engine_);
    }

    /** Normal with given mean and standard deviation. */
    Real
    normal(Real mean = 0.0, Real stddev = 1.0)
    {
        return std::normal_distribution<Real>(mean, stddev)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    randint(int64_t lo, int64_t hi)
    {
        return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
    }

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(Real p) { return uniform() < p; }

    /**
     * Standard Gumbel(0, 1) sample, used by the Gumbel-softmax codesign
     * layer for differentiable discrete-level selection.
     */
    Real
    gumbel()
    {
        Real u = uniform(1e-12, 1.0);
        return -std::log(-std::log(u));
    }

    /** Poisson sample (used by the shot-noise detector model). */
    int64_t
    poisson(Real mean)
    {
        return std::poisson_distribution<int64_t>(mean)(engine_);
    }

    /** Access to the raw engine for std::shuffle et al. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace lightridge
