/**
 * @file
 * Minimal leveled logger. Severity-filtered, printf-free, stream based.
 */
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace lightridge {

/** Log severity levels in increasing order of importance. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

namespace log_detail {

/** Global minimum level; messages below it are dropped. */
LogLevel &globalLevel();

/** Emit one formatted line to stderr. */
void emit(LogLevel level, const std::string &msg);

} // namespace log_detail

/** Set the global log level (thread-safe enough for test usage). */
void setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

/**
 * Stream-style log statement collector.
 *
 * Usage: LR_LOG(Info) << "trained " << n << " epochs";
 */
class LogLine
{
  public:
    explicit LogLine(LogLevel level) : level_(level) {}

    ~LogLine()
    {
        if (level_ >= log_detail::globalLevel())
            log_detail::emit(level_, stream_.str());
    }

    template <typename T>
    LogLine &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};

} // namespace lightridge

#define LR_LOG(severity) ::lightridge::LogLine(::lightridge::LogLevel::severity)
