/**
 * @file
 * Small fixed-size thread pool with a parallel-for helper.
 *
 * Used to parallelize per-sample emulation during batched DONN training and
 * row-wise FFT work. Degrades gracefully to serial execution on single-core
 * hosts (worker count 0 or 1 runs inline on the caller's thread).
 */
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "utils/sync.hpp"

namespace lightridge {

/** Fixed-size worker pool executing enqueued std::function jobs. */
class ThreadPool
{
  public:
    /**
     * Create a pool with the given number of workers.
     * @param workers 0 selects std::thread::hardware_concurrency().
     */
    explicit ThreadPool(std::size_t workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (0 means inline/serial execution). */
    std::size_t workerCount() const { return threads_.size(); }

    /**
     * Run fn(i) for i in [0, count) across the pool and block until all
     * iterations complete. Executes serially when the pool has <= 1 worker.
     * If any iteration throws, remaining iterations are abandoned and the
     * first exception is rethrown on the calling thread.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn)
        LIGHTRIDGE_EXCLUDES(mutex_);

    /**
     * Enqueue one fire-and-forget job. Unlike parallelFor this does not
     * block: the caller arranges its own completion signalling, which is
     * what lets the pipelined training engine overlap the main thread's
     * gradient merge with the pool's next-batch forwards. On a pool with
     * no workers the job runs inline before returning (same side effects,
     * no concurrency), so single-core hosts degrade gracefully instead of
     * deadlocking on a queue nobody drains. Jobs must not throw.
     */
    void enqueue(std::function<void()> job) LIGHTRIDGE_EXCLUDES(mutex_);

    /** Shared process-wide pool sized from hardware concurrency. */
    static ThreadPool &global();

    /**
     * True when the calling thread is a worker of any ThreadPool. Used by
     * layers that parallelize internally (row-parallel FFT2) to fall back
     * to serial execution instead of nesting parallelFor — a nested wait
     * inside a worker could deadlock the queue and oversubscribes cores.
     */
    static bool insideWorker();

  private:
    void workerLoop() LIGHTRIDGE_EXCLUDES(mutex_);

    std::vector<std::thread> threads_;
    Mutex mutex_;
    CondVar cv_;
    std::queue<std::function<void()>> jobs_ LIGHTRIDGE_GUARDED_BY(mutex_);
    bool stop_ LIGHTRIDGE_GUARDED_BY(mutex_) = false;
};

} // namespace lightridge
