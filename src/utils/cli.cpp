#include "utils/cli.hpp"

#include <cstdlib>
#include <cstring>

namespace lightridge {

CliArgs::CliArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            continue;
        arg = arg.substr(2);
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
            flags_[arg] = argv[++i];
        } else {
            flags_[arg] = "";
        }
    }
}

bool
CliArgs::has(const std::string &name) const
{
    return flags_.count(name) > 0;
}

std::string
CliArgs::getString(const std::string &name, const std::string &fallback) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
}

double
CliArgs::getDouble(const std::string &name, double fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty())
        return fallback;
    return std::atof(it->second.c_str());
}

int
CliArgs::getInt(const std::string &name, int fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty())
        return fallback;
    return std::atoi(it->second.c_str());
}

bool
CliArgs::getBool(const std::string &name, bool fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    if (it->second.empty() || it->second == "1" || it->second == "true")
        return true;
    return false;
}

bool
benchFullScale()
{
    // Read once at tool startup before any threads exist; getenv is only
    // unsafe against a concurrent setenv, which this codebase never does.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char *env = std::getenv("LR_BENCH_FULL");
    return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

} // namespace lightridge
