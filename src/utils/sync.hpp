/**
 * @file
 * Annotated synchronization primitives for Clang Thread Safety Analysis.
 *
 * Thin zero-overhead wrappers over std::mutex / std::condition_variable
 * that carry the capability annotations of thread_annotations.hpp, so a
 * Clang `-Wthread-safety` build can prove lock discipline at compile
 * time. All concurrent LightRidge components (serve engine / registry /
 * server, the shared-instance layer modulation caches, the thread pool,
 * the process-wide FFT-plan and transfer-function caches) use these
 * instead of the raw std types.
 *
 * Conventions (see README "Static analysis & code health"):
 *  - every member protected by a Mutex is declared
 *    `LIGHTRIDGE_GUARDED_BY(mutex_)`;
 *  - private helpers that expect the lock held are
 *    `LIGHTRIDGE_REQUIRES(mutex_)` and named `...Locked`;
 *  - condition waits are explicit `while (!pred) cv.wait(mutex_);`
 *    loops, not lambda predicates — the analysis cannot see a lock held
 *    inside a lambda body, an explicit loop it verifies exactly.
 */
#pragma once

#include <condition_variable>
#include <mutex>

#include "utils/thread_annotations.hpp"

namespace lightridge {

/** std::mutex with thread-safety capability annotations. */
class LIGHTRIDGE_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() LIGHTRIDGE_ACQUIRE()
    {
        mutex_.lock();
    }

    void
    unlock() LIGHTRIDGE_RELEASE()
    {
        mutex_.unlock();
    }

    bool
    try_lock() LIGHTRIDGE_TRY_ACQUIRE(true)
    {
        return mutex_.try_lock();
    }

  private:
    friend class CondVar;

    std::mutex mutex_;
};

/** RAII scoped lock over a Mutex (the annotated lock_guard). */
class LIGHTRIDGE_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) LIGHTRIDGE_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() LIGHTRIDGE_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable working directly on the annotated Mutex.
 *
 * wait() is declared REQUIRES(mutex): the caller holds the lock before
 * and after the call (the internal release/reacquire during the block
 * is invisible to — and sound for — the analysis, which only reasons
 * about the lock state at function boundaries). No predicate overloads
 * on purpose: write the wait loop in the locked caller, where guarded
 * reads are checked.
 */
class CondVar
{
  public:
    CondVar() = default;

    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release `mutex`, block, reacquire before returning. */
    void
    wait(Mutex &mutex) LIGHTRIDGE_REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
        cv_.wait(lock);
        lock.release(); // ownership stays with the caller's MutexLock
    }

    void
    notify_one() noexcept
    {
        cv_.notify_one();
    }

    void
    notify_all() noexcept
    {
        cv_.notify_all();
    }

  private:
    std::condition_variable cv_;
};

} // namespace lightridge
