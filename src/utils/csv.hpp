/**
 * @file
 * CSV table writer used by the benchmark harnesses to dump every
 * reproduced table/figure series alongside the printed output.
 */
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace lightridge {

/** Accumulates rows and writes an RFC-4180-ish CSV file. */
class CsvWriter
{
  public:
    /** Set the header row. */
    void
    header(const std::vector<std::string> &columns)
    {
        header_ = columns;
    }

    /** Append a fully formatted row. */
    void
    row(const std::vector<std::string> &cells)
    {
        rows_.push_back(cells);
    }

    /** Convenience: append a row of doubles with %g formatting. */
    void
    rowNumeric(const std::vector<double> &cells)
    {
        std::vector<std::string> text;
        text.reserve(cells.size());
        for (double v : cells) {
            std::ostringstream s;
            s << v;
            text.push_back(s.str());
        }
        rows_.push_back(std::move(text));
    }

    /** Serialize to a string. */
    std::string
    str() const
    {
        std::ostringstream out;
        auto emit = [&](const std::vector<std::string> &cells) {
            for (std::size_t i = 0; i < cells.size(); ++i) {
                if (i)
                    out << ',';
                bool quote = cells[i].find_first_of(",\"\n") !=
                             std::string::npos;
                if (!quote) {
                    out << cells[i];
                } else {
                    out << '"';
                    for (char c : cells[i]) {
                        if (c == '"')
                            out << '"';
                        out << c;
                    }
                    out << '"';
                }
            }
            out << '\n';
        };
        if (!header_.empty())
            emit(header_);
        for (const auto &r : rows_)
            emit(r);
        return out.str();
    }

    /** Write to file. @return false on I/O failure. */
    bool
    save(const std::string &path) const
    {
        std::ofstream out(path);
        if (!out)
            return false;
        out << str();
        return static_cast<bool>(out);
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace lightridge
