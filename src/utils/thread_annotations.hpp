/**
 * @file
 * Clang Thread Safety Analysis annotation macros.
 *
 * These wrap the capability attributes of Clang's `-Wthread-safety`
 * analysis (the Abseil `GUARDED_BY` / capability model) so lock
 * discipline is a compile-time contract instead of a runtime TSan
 * finding: every mutex-protected member is declared `GUARDED_BY` its
 * mutex, every function that must run under a lock is `REQUIRES`, and a
 * Clang build with `-Wthread-safety -Werror` (CMake option
 * `LIGHTRIDGE_THREAD_SAFETY`, default ON for Clang) rejects any access
 * that violates the contract. On compilers without the attributes
 * (GCC, MSVC) every macro expands to nothing.
 *
 * Use the annotated primitives of utils/sync.hpp (`Mutex`, `MutexLock`,
 * `CondVar`) rather than the std types directly: the analysis only
 * tracks capabilities it can see, and the std lock types carry no
 * annotations.
 */
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(x) // no-op
#endif

/** Marks a class as a capability (a lock). The string is the kind shown
 *  in diagnostics, e.g. "mutex". */
#define LIGHTRIDGE_CAPABILITY(x)                                            \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/** Marks an RAII class whose lifetime acquires/releases a capability. */
#define LIGHTRIDGE_SCOPED_CAPABILITY                                        \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/** Data member readable/writable only while holding `x`. */
#define LIGHTRIDGE_GUARDED_BY(x)                                            \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/** Pointer member whose *pointee* is protected by `x`. */
#define LIGHTRIDGE_PT_GUARDED_BY(x)                                         \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/** This capability must be acquired before the listed ones. */
#define LIGHTRIDGE_ACQUIRED_BEFORE(...)                                     \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

/** This capability must be acquired after the listed ones. */
#define LIGHTRIDGE_ACQUIRED_AFTER(...)                                      \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/** Caller must hold the listed capabilities exclusively. */
#define LIGHTRIDGE_REQUIRES(...)                                            \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(                               \
        requires_capability(__VA_ARGS__))

/** Caller must hold the listed capabilities, shared or exclusive. */
#define LIGHTRIDGE_REQUIRES_SHARED(...)                                     \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(                               \
        requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability exclusively; caller must not hold it. */
#define LIGHTRIDGE_ACQUIRE(...)                                             \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(                               \
        acquire_capability(__VA_ARGS__))

/** Function acquires the capability shared. */
#define LIGHTRIDGE_ACQUIRE_SHARED(...)                                      \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(                               \
        acquire_shared_capability(__VA_ARGS__))

/** Function releases the capability; caller must hold it. */
#define LIGHTRIDGE_RELEASE(...)                                             \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(                               \
        release_capability(__VA_ARGS__))

/** Function releases a shared hold of the capability. */
#define LIGHTRIDGE_RELEASE_SHARED(...)                                      \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(                               \
        release_shared_capability(__VA_ARGS__))

/** Function attempts the acquisition; first argument is the success
 *  return value. */
#define LIGHTRIDGE_TRY_ACQUIRE(...)                                         \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(                               \
        try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the listed capabilities (deadlock prevention). */
#define LIGHTRIDGE_EXCLUDES(...)                                            \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the capability is held (for code the analysis
 *  cannot follow, e.g. callbacks invoked under a caller's lock). */
#define LIGHTRIDGE_ASSERT_CAPABILITY(x)                                     \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/** Function returns a reference to the capability guarding its result. */
#define LIGHTRIDGE_RETURN_CAPABILITY(x)                                     \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/** Escape hatch: disables the analysis for one function. Every use must
 *  carry a comment explaining why the contract cannot be expressed. */
#define LIGHTRIDGE_NO_THREAD_SAFETY_ANALYSIS                                \
    LIGHTRIDGE_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
