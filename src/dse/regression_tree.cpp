#include "dse/regression_tree.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace lightridge {

namespace {

Real
meanOf(const std::vector<Real> &y, const std::vector<std::size_t> &idx)
{
    Real total = 0;
    for (std::size_t i : idx)
        total += y[i];
    return idx.empty() ? 0 : total / static_cast<Real>(idx.size());
}

} // namespace

int
RegressionTree::build(const std::vector<std::vector<Real>> &x,
                      const std::vector<Real> &y,
                      std::vector<std::size_t> &idx, int depth)
{
    Node node;
    node.value = meanOf(y, idx);
    int node_id = static_cast<int>(nodes_.size());
    nodes_.push_back(node);

    if (depth >= max_depth_ || idx.size() < 2 * min_samples_leaf_)
        return node_id;

    // Greedy best split: minimize weighted child SSE == maximize
    // between-group variance. O(features * n log n).
    const std::size_t n_features = x[idx[0]].size();
    Real best_gain = 0;
    int best_feature = -1;
    Real best_threshold = 0;

    Real total_sum = 0, total_sq = 0;
    for (std::size_t i : idx) {
        total_sum += y[i];
        total_sq += y[i] * y[i];
    }
    const Real parent_sse =
        total_sq - total_sum * total_sum / static_cast<Real>(idx.size());

    std::vector<std::size_t> order = idx;
    for (std::size_t f = 0; f < n_features; ++f) {
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return x[a][f] < x[b][f];
                  });
        Real left_sum = 0, left_sq = 0;
        for (std::size_t pos = 0; pos + 1 < order.size(); ++pos) {
            Real yi = y[order[pos]];
            left_sum += yi;
            left_sq += yi * yi;
            // Candidate split between pos and pos+1; skip ties.
            if (x[order[pos]][f] == x[order[pos + 1]][f])
                continue;
            std::size_t nl = pos + 1;
            std::size_t nr = order.size() - nl;
            if (nl < min_samples_leaf_ || nr < min_samples_leaf_)
                continue;
            Real right_sum = total_sum - left_sum;
            Real right_sq = total_sq - left_sq;
            Real sse = (left_sq - left_sum * left_sum / nl) +
                       (right_sq - right_sum * right_sum / nr);
            Real gain = parent_sse - sse;
            if (gain > best_gain + 1e-15) {
                best_gain = gain;
                best_feature = static_cast<int>(f);
                best_threshold =
                    (x[order[pos]][f] + x[order[pos + 1]][f]) / 2;
            }
        }
    }

    if (best_feature < 0)
        return node_id;

    std::vector<std::size_t> left_idx, right_idx;
    for (std::size_t i : idx) {
        if (x[i][best_feature] <= best_threshold)
            left_idx.push_back(i);
        else
            right_idx.push_back(i);
    }
    if (left_idx.empty() || right_idx.empty())
        return node_id;

    nodes_[node_id].feature = best_feature;
    nodes_[node_id].threshold = best_threshold;
    nodes_[node_id].left = build(x, y, left_idx, depth + 1);
    nodes_[node_id].right = build(x, y, right_idx, depth + 1);
    return node_id;
}

void
RegressionTree::fit(const std::vector<std::vector<Real>> &x,
                    const std::vector<Real> &y)
{
    if (x.empty() || x.size() != y.size())
        throw std::invalid_argument("RegressionTree::fit: bad inputs");
    nodes_.clear();
    std::vector<std::size_t> idx(x.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    build(x, y, idx, 0);
}

Real
RegressionTree::predict(const std::vector<Real> &row) const
{
    if (nodes_.empty())
        return 0;
    int cur = 0;
    while (nodes_[cur].feature >= 0) {
        cur = row[nodes_[cur].feature] <= nodes_[cur].threshold
                  ? nodes_[cur].left
                  : nodes_[cur].right;
    }
    return nodes_[cur].value;
}

} // namespace lightridge
