/**
 * @file
 * Depth-limited CART regression tree: the weak learner of the gradient
 * boosting DSE model (paper Section 4 uses scikit-learn-style gradient
 * boosted regression trees with max_depth = 3).
 */
#pragma once

#include <cstddef>
#include <vector>

#include "utils/types.hpp"

namespace lightridge {

/** Binary regression tree fit by greedy variance-reduction splits. */
class RegressionTree
{
  public:
    /**
     * @param max_depth maximum tree depth (root at depth 0)
     * @param min_samples_leaf minimum samples per leaf
     */
    explicit RegressionTree(int max_depth = 3,
                            std::size_t min_samples_leaf = 1)
        : max_depth_(max_depth), min_samples_leaf_(min_samples_leaf)
    {}

    /**
     * Fit to rows x[i] (all the same length) and targets y[i] using MSE
     * splitting on axis-aligned thresholds.
     */
    void fit(const std::vector<std::vector<Real>> &x,
             const std::vector<Real> &y);

    /** Predicted value for one feature row. */
    Real predict(const std::vector<Real> &row) const;

    /** Number of nodes (for tests / introspection). */
    std::size_t nodeCount() const { return nodes_.size(); }

  private:
    struct Node
    {
        int feature = -1;    ///< -1 marks a leaf
        Real threshold = 0;
        Real value = 0;      ///< leaf prediction
        int left = -1;
        int right = -1;
    };

    int build(const std::vector<std::vector<Real>> &x,
              const std::vector<Real> &y, std::vector<std::size_t> &idx,
              int depth);

    int max_depth_;
    std::size_t min_samples_leaf_;
    std::vector<Node> nodes_;
};

} // namespace lightridge
