#include "dse/gbrt.hpp"

#include <stdexcept>

namespace lightridge {

void
GradientBoostedTrees::fit(const std::vector<std::vector<Real>> &x,
                          const std::vector<Real> &y)
{
    if (x.empty() || x.size() != y.size())
        throw std::invalid_argument("GradientBoostedTrees::fit: bad inputs");
    trees_.clear();

    // Base learner: global mean.
    base_prediction_ = 0;
    for (Real v : y)
        base_prediction_ += v;
    base_prediction_ /= static_cast<Real>(y.size());

    std::vector<Real> residual(y.size());
    std::vector<Real> current(y.size(), base_prediction_);

    Real initial_sq = 0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        Real d = y[i] - base_prediction_;
        initial_sq += d * d;
    }

    for (int t = 0; t < config_.n_estimators; ++t) {
        Real total_sq = 0;
        for (std::size_t i = 0; i < y.size(); ++i) {
            residual[i] = y[i] - current[i];
            total_sq += residual[i] * residual[i];
        }
        // Converged: residual energy is negligible relative to the start
        // (also guards against spinning once trees stop splitting).
        if (total_sq < 1e-12 * std::max<Real>(1.0, initial_sq))
            break;

        RegressionTree tree(config_.max_depth, config_.min_samples_leaf);
        tree.fit(x, residual);
        for (std::size_t i = 0; i < y.size(); ++i)
            current[i] += config_.learning_rate * tree.predict(x[i]);
        trees_.push_back(std::move(tree));
    }
}

Real
GradientBoostedTrees::predict(const std::vector<Real> &row) const
{
    Real value = base_prediction_;
    for (const RegressionTree &tree : trees_)
        value += config_.learning_rate * tree.predict(row);
    return value;
}

Real
GradientBoostedTrees::mse(const std::vector<std::vector<Real>> &x,
                          const std::vector<Real> &y) const
{
    if (x.empty())
        return 0;
    Real total = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        Real d = predict(x[i]) - y[i];
        total += d * d;
    }
    return total / static_cast<Real>(x.size());
}

} // namespace lightridge
