/**
 * @file
 * LightRidge-DSE: architectural design space exploration (Section 4).
 *
 * The design space is spanned by the diffraction unit size d and the
 * inter-plane distance D under a laser wavelength lambda. The engine:
 *
 *  1. collects training data by sweeping (d, D) grids at source
 *     wavelengths and quick-training an emulated DONN at each point;
 *  2. fits the gradient-boosted analytical model accuracy = f(lambda, d, D);
 *  3. predicts the design space at a new nearby wavelength; and
 *  4. runs a guided search - a handful of real emulations at the
 *     top-predicted points instead of a full grid (the paper's "two
 *     emulations instead of 121" = 60x DSE speedup).
 *
 * The half-cone diffraction-angle theory [Chen et al. 2021] provides the
 * analytic sanity check: good designs cluster where D roughly matches
 * idealDistanceHalfCone(d, lambda).
 */
#pragma once

#include <vector>

#include "core/dataset.hpp"
#include "core/model.hpp"
#include "dse/gbrt.hpp"

namespace lightridge {

/** One candidate architecture in the physical design space. */
struct DesignPoint
{
    Real wavelength = 532e-9; ///< [m]
    Real unit_size = 36e-6;   ///< diffraction unit size d [m]
    Real distance = 0.3;      ///< inter-plane distance D [m]
};

/** Emulation budget for evaluating one design point. */
struct QuickEvalConfig
{
    std::size_t system_size = 48;  ///< emulation resolution
    std::size_t depth = 3;         ///< diffractive layers
    std::size_t train_samples = 240;
    std::size_t test_samples = 160;
    int epochs = 1;
    Real lr = 0.05;
    std::size_t det_size = 5;      ///< detector region side [pixels]
    uint64_t seed = 17;
    /**
     * Zero-padding factor for the emulation. 2 (default) models light
     * leaving the finite aperture, which is what makes the distance/unit
     * trade-off of Fig. 5 physical: over-long hops lose energy past the
     * aperture, under-short hops never connect distant units.
     */
    std::size_t pad_factor = 2;
};

/** Grid specification for a (d, D) sweep. */
struct SweepGrid
{
    Real unit_min = 10.0;   ///< in multiples of lambda (paper: 10..110)
    Real unit_max = 110.0;
    std::size_t unit_steps = 5;
    Real dist_min = 0.02;   ///< [m]
    Real dist_max = 0.60;
    std::size_t dist_steps = 5;
};

/** A labeled design-space sample. */
struct DsePoint
{
    DesignPoint design;
    Real accuracy = 0;
};

/**
 * Train + evaluate an emulated DONN at one design point; returns test
 * accuracy. The dataset is generated internally (SynthMNIST) from
 * config.seed so that every point sees identical data.
 */
Real evaluateDesign(const DesignPoint &point, const QuickEvalConfig &config);

/** Sweep a (d, D) grid at a fixed wavelength. */
std::vector<DsePoint> sweepDesignSpace(Real wavelength, const SweepGrid &grid,
                                       const QuickEvalConfig &config);

/** Analytical-model-based DSE engine. */
class DseEngine
{
  public:
    explicit DseEngine(GbrtConfig model_config = {})
        : model_(model_config)
    {}

    /** Add labeled sweep data (any wavelengths). */
    void addTrainingData(const std::vector<DsePoint> &points);

    /** Fit the analytical model on everything added so far. */
    void fitModel();

    /** Predicted accuracy at one design point. */
    Real predict(const DesignPoint &point) const;

    /** Predicted accuracy over a (d, D) grid at a target wavelength. */
    std::vector<DsePoint> predictGrid(Real wavelength,
                                      const SweepGrid &grid) const;

    /**
     * Guided search: run real emulations only at the top-k predicted
     * points of the grid and return the best verified design (the "star
     * point" of Fig. 5d). emulations_used reports the cost.
     */
    DsePoint guidedSearch(Real wavelength, const SweepGrid &grid,
                          const QuickEvalConfig &config, std::size_t top_k,
                          std::size_t *emulations_used = nullptr) const;

    /**
     * Guided search under a robustness objective: the top-k predicted
     * points are verified with evaluateDesignRobust() (mean accuracy
     * across a lateral-misalignment grid) instead of clean accuracy, so
     * the returned "star point" is the design that best tolerates
     * assembly error. The returned accuracy is the robust metric.
     */
    DsePoint guidedSearchRobust(Real wavelength, const SweepGrid &grid,
                                const QuickEvalConfig &config,
                                std::size_t top_k,
                                const std::vector<Real> &lateral_shifts,
                                std::size_t *emulations_used =
                                    nullptr) const;

    std::size_t trainingSize() const { return features_.size(); }

  private:
    static std::vector<Real> featurize(const DesignPoint &p);

    GradientBoostedTrees model_;
    std::vector<std::vector<Real>> features_;
    std::vector<Real> targets_;
};

/** One row of the Table 3 sensitivity analysis. */
struct SensitivityRow
{
    std::string parameter; ///< "wavelength" | "distance" | "unit size"
    std::vector<Real> shifts;     ///< relative shifts applied (e.g. -0.10)
    /** Applied perturbation in physical units [m]: the absolute delta
     *  each shift adds to the parameter (e.g. -0.03 m for a -10% shift
     *  of a 0.3 m distance), not grid cells or bare fractions. */
    std::vector<Real> applied;
    std::vector<Real> accuracies; ///< accuracy at each shift

    Json toJson() const;
};

/**
 * Single-parameter control-variable sensitivity analysis around a base
 * design (Table 3): shift one of {wavelength, distance, unit size} by the
 * given relative amounts while holding the others fixed, re-evaluating
 * the emulated accuracy each time with weights trained at the base point.
 */
std::vector<SensitivityRow>
sensitivityAnalysis(const DesignPoint &base, const QuickEvalConfig &config,
                    const std::vector<Real> &shifts);

/**
 * Robust design metric: train an emulated DONN at the design point, then
 * report its mean accuracy across a lateral-misalignment grid (each shift
 * applied to every free-space hop, the robustnessSweep "lateral" axis).
 * Rewards designs that tolerate assembly error, not just peak accuracy.
 */
Real evaluateDesignRobust(const DesignPoint &point,
                          const QuickEvalConfig &config,
                          const std::vector<Real> &lateral_shifts);

} // namespace lightridge
