/**
 * @file
 * Gradient-boosted regression trees: the analytical DSE model of Section 4
 * (the paper fits one with n_estimators=3500, learning_rate=0.2,
 * max_depth=3 to transfer design-space knowledge across wavelengths).
 */
#pragma once

#include <vector>

#include "dse/regression_tree.hpp"

namespace lightridge {

/** Hyperparameters of the boosted ensemble. */
struct GbrtConfig
{
    int n_estimators = 400;
    Real learning_rate = 0.2;
    int max_depth = 3;
    std::size_t min_samples_leaf = 1;

    /** The exact configuration reported in the paper. */
    static GbrtConfig
    paper()
    {
        return GbrtConfig{3500, 0.2, 3, 1};
    }
};

/** Least-squares gradient boosting over regression trees. */
class GradientBoostedTrees
{
  public:
    explicit GradientBoostedTrees(GbrtConfig config = {})
        : config_(config)
    {}

    /** Fit to feature rows and targets. */
    void fit(const std::vector<std::vector<Real>> &x,
             const std::vector<Real> &y);

    /** Predicted value for one row. */
    Real predict(const std::vector<Real> &row) const;

    /** Mean squared error over a labeled set. */
    Real mse(const std::vector<std::vector<Real>> &x,
             const std::vector<Real> &y) const;

    std::size_t treeCount() const { return trees_.size(); }

  private:
    GbrtConfig config_;
    Real base_prediction_ = 0;
    std::vector<RegressionTree> trees_;
};

} // namespace lightridge
