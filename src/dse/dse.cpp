#include "dse/dse.hpp"

#include <algorithm>
#include <numeric>

#include "api/robustness.hpp"
#include "core/session.hpp"
#include "data/synth_digits.hpp"
#include "optics/perturbation.hpp"
#include "utils/log.hpp"

namespace lightridge {

namespace {

/** Build the emulation model for one design point. */
DonnModel
buildModel(const DesignPoint &point, const QuickEvalConfig &config,
           Rng *rng)
{
    SystemSpec spec;
    spec.size = config.system_size;
    spec.pixel = point.unit_size;
    spec.distance = point.distance;
    spec.pad_factor = config.pad_factor;
    Laser laser;
    laser.wavelength = point.wavelength;
    return ModelBuilder(spec, laser)
        .diffractiveLayers(config.depth, 1.0, rng)
        .detectorGrid(10, config.det_size)
        .build();
}

/** Shared quick-eval dataset pair (identical across design points). */
void
makeData(const QuickEvalConfig &config, ClassDataset *train,
         ClassDataset *test)
{
    *train = makeSynthDigits(config.train_samples, config.seed);
    *test = makeSynthDigits(config.test_samples, config.seed + 1);
}

} // namespace

Real
evaluateDesign(const DesignPoint &point, const QuickEvalConfig &config)
{
    ClassDataset train, test;
    makeData(config, &train, &test);

    Rng rng(config.seed + 2);
    DonnModel model = buildModel(point, config, &rng);

    TrainConfig tc;
    tc.epochs = config.epochs;
    tc.batch = 32;
    tc.lr = config.lr;
    tc.seed = config.seed + 3;
    ClassificationTask task(model, train);
    Session(task, tc).fit();
    return evaluateAccuracy(model, test);
}

Real
evaluateDesignRobust(const DesignPoint &point, const QuickEvalConfig &config,
                     const std::vector<Real> &lateral_shifts)
{
    ClassDataset train, test;
    makeData(config, &train, &test);

    Rng rng(config.seed + 2);
    DonnModel model = buildModel(point, config, &rng);

    TrainConfig tc;
    tc.epochs = config.epochs;
    tc.batch = 32;
    tc.lr = config.lr;
    tc.seed = config.seed + 3;
    ClassificationTask task(model, train);
    Session(task, tc).fit();

    RobustnessSweepConfig sweep;
    sweep.lateral_shifts = lateral_shifts;
    sweep.seed = config.seed;
    return robustnessSweep(model, test, sweep).meanAccuracy("lateral");
}

std::vector<DsePoint>
sweepDesignSpace(Real wavelength, const SweepGrid &grid,
                 const QuickEvalConfig &config)
{
    std::vector<DsePoint> points;
    points.reserve(grid.unit_steps * grid.dist_steps);
    for (std::size_t ui = 0; ui < grid.unit_steps; ++ui) {
        Real unit_mult =
            grid.unit_steps == 1
                ? grid.unit_min
                : grid.unit_min + (grid.unit_max - grid.unit_min) * ui /
                                      (grid.unit_steps - 1);
        for (std::size_t di = 0; di < grid.dist_steps; ++di) {
            Real dist =
                grid.dist_steps == 1
                    ? grid.dist_min
                    : grid.dist_min + (grid.dist_max - grid.dist_min) * di /
                                          (grid.dist_steps - 1);
            DsePoint p;
            p.design = DesignPoint{wavelength, unit_mult * wavelength, dist};
            p.accuracy = evaluateDesign(p.design, config);
            LR_LOG(Debug) << "sweep " << unit_mult << " lambda, D=" << dist
                          << " -> acc " << p.accuracy;
            points.push_back(p);
        }
    }
    return points;
}

std::vector<Real>
DseEngine::featurize(const DesignPoint &p)
{
    // Physics-informed features help the trees transfer across nearby
    // wavelengths: unit size in wavelengths (sets the half-cone angle)
    // and the lateral cone spread D*lambda/d at the next plane.
    return {p.wavelength * 1e9, p.unit_size * 1e6, p.distance,
            p.unit_size / p.wavelength,
            p.distance * p.wavelength / p.unit_size};
}

void
DseEngine::addTrainingData(const std::vector<DsePoint> &points)
{
    for (const DsePoint &p : points) {
        features_.push_back(featurize(p.design));
        targets_.push_back(p.accuracy);
    }
}

void
DseEngine::fitModel()
{
    model_.fit(features_, targets_);
}

Real
DseEngine::predict(const DesignPoint &point) const
{
    return model_.predict(featurize(point));
}

std::vector<DsePoint>
DseEngine::predictGrid(Real wavelength, const SweepGrid &grid) const
{
    std::vector<DsePoint> points;
    points.reserve(grid.unit_steps * grid.dist_steps);
    for (std::size_t ui = 0; ui < grid.unit_steps; ++ui) {
        Real unit_mult =
            grid.unit_steps == 1
                ? grid.unit_min
                : grid.unit_min + (grid.unit_max - grid.unit_min) * ui /
                                      (grid.unit_steps - 1);
        for (std::size_t di = 0; di < grid.dist_steps; ++di) {
            Real dist =
                grid.dist_steps == 1
                    ? grid.dist_min
                    : grid.dist_min + (grid.dist_max - grid.dist_min) * di /
                                          (grid.dist_steps - 1);
            DsePoint p;
            p.design = DesignPoint{wavelength, unit_mult * wavelength, dist};
            p.accuracy = predict(p.design);
            points.push_back(p);
        }
    }
    return points;
}

DsePoint
DseEngine::guidedSearch(Real wavelength, const SweepGrid &grid,
                        const QuickEvalConfig &config, std::size_t top_k,
                        std::size_t *emulations_used) const
{
    std::vector<DsePoint> predicted = predictGrid(wavelength, grid);
    std::sort(predicted.begin(), predicted.end(),
              [](const DsePoint &a, const DsePoint &b) {
                  return a.accuracy > b.accuracy;
              });
    top_k = std::min(top_k, predicted.size());

    DsePoint best;
    best.accuracy = -1;
    for (std::size_t i = 0; i < top_k; ++i) {
        Real measured = evaluateDesign(predicted[i].design, config);
        if (measured > best.accuracy) {
            best.design = predicted[i].design;
            best.accuracy = measured;
        }
    }
    if (emulations_used != nullptr)
        *emulations_used = top_k;
    return best;
}

DsePoint
DseEngine::guidedSearchRobust(Real wavelength, const SweepGrid &grid,
                              const QuickEvalConfig &config,
                              std::size_t top_k,
                              const std::vector<Real> &lateral_shifts,
                              std::size_t *emulations_used) const
{
    std::vector<DsePoint> predicted = predictGrid(wavelength, grid);
    std::sort(predicted.begin(), predicted.end(),
              [](const DsePoint &a, const DsePoint &b) {
                  return a.accuracy > b.accuracy;
              });
    top_k = std::min(top_k, predicted.size());

    DsePoint best;
    best.accuracy = -1;
    for (std::size_t i = 0; i < top_k; ++i) {
        Real measured =
            evaluateDesignRobust(predicted[i].design, config,
                                 lateral_shifts);
        if (measured > best.accuracy) {
            best.design = predicted[i].design;
            best.accuracy = measured;
        }
    }
    if (emulations_used != nullptr)
        *emulations_used = top_k;
    return best;
}

Json
SensitivityRow::toJson() const
{
    Json j;
    j["parameter"] = Json(parameter);
    Json sj, aj, accj;
    for (Real s : shifts)
        sj.push(Json(s));
    for (Real a : applied)
        aj.push(Json(a));
    for (Real a : accuracies)
        accj.push(Json(a));
    j["shifts"] = std::move(sj);
    j["applied"] = std::move(aj);
    j["accuracies"] = std::move(accj);
    return j;
}

std::vector<SensitivityRow>
sensitivityAnalysis(const DesignPoint &base, const QuickEvalConfig &config,
                    const std::vector<Real> &shifts)
{
    ClassDataset train, test;
    makeData(config, &train, &test);

    // Train once at the base design; the trained phases stay fixed while
    // the physical parameters drift (Table 3's control-variable test).
    Rng rng(config.seed + 2);
    DonnModel base_model = buildModel(base, config, &rng);
    TrainConfig tc;
    tc.epochs = config.epochs;
    tc.batch = 32;
    tc.lr = config.lr;
    tc.seed = config.seed + 3;
    ClassificationTask task(base_model, train);
    Session(task, tc).fit();

    // Capture trained phases + detector calibration.
    std::vector<RealMap> phases;
    for (std::size_t i = 0; i < base_model.depth(); ++i)
        phases.push_back(
            static_cast<DiffractiveLayer *>(base_model.layer(i))->phase());
    Real amp = base_model.detector().ampFactor();

    auto eval_at = [&](const DesignPoint &point) -> Real {
        DonnModel shifted = buildModel(point, config, nullptr);
        for (std::size_t i = 0; i < shifted.depth(); ++i)
            static_cast<DiffractiveLayer *>(shifted.layer(i))->phase() =
                phases[i];
        shifted.detector().setAmpFactor(amp);
        return evaluateAccuracy(shifted, test);
    };

    // The distance row rides the axial perturbation path instead of
    // rebuilding the model: the transfer function at D + dz comes from
    // the process-wide kernel LRU — the same function a rebuild would
    // compute — attached to the trained base model as a HopPerturbation.
    const std::vector<const Propagator *> hops =
        modelLayerHops(base_model);
    auto eval_distance = [&](Real dz) -> Real {
        if (dz == 0.0)
            return evaluateAccuracy(base_model, test);
        PerturbationRealization realization;
        realization.layers.resize(base_model.depth());
        for (std::size_t i = 0; i < hops.size(); ++i)
            if (hops[i] != nullptr)
                fillHopPerturbation(*hops[i], 0.0, 0.0, dz,
                                    realization.layers[i].hop);
        fillHopPerturbation(*base_model.hopPropagator(), 0.0, 0.0, dz,
                            realization.final_hop);
        base_model.setPerturbation(&realization);
        Real acc = evaluateAccuracy(base_model, test);
        base_model.setPerturbation(nullptr);
        return acc;
    };

    std::vector<SensitivityRow> rows(3);
    rows[0].parameter = "wavelength";
    rows[1].parameter = "distance";
    rows[2].parameter = "unit size";
    for (Real s : shifts) {
        DesignPoint p = base;
        p.wavelength = base.wavelength * (1 + s);
        rows[0].shifts.push_back(s);
        rows[0].applied.push_back(base.wavelength * s);
        rows[0].accuracies.push_back(eval_at(p));

        rows[1].shifts.push_back(s);
        rows[1].applied.push_back(base.distance * s);
        rows[1].accuracies.push_back(eval_distance(base.distance * s));

        p = base;
        p.unit_size = base.unit_size * (1 + s);
        rows[2].shifts.push_back(s);
        rows[2].applied.push_back(base.unit_size * s);
        rows[2].accuracies.push_back(eval_at(p));
    }
    return rows;
}

} // namespace lightridge
