#include "hardware/deploy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lightridge {

FixedModulationLayer::FixedModulationLayer(
    std::shared_ptr<const Propagator> propagator, Field modulation)
    : propagator_(std::move(propagator)), modulation_(std::move(modulation))
{
    const std::size_t n = propagator_->config().grid.n;
    if (modulation_.rows() != n || modulation_.cols() != n)
        throw std::invalid_argument("FixedModulationLayer: shape mismatch");
}

Field
FixedModulationLayer::forward(const Field &in, bool)
{
    return infer(in);
}

Field
FixedModulationLayer::infer(const Field &in) const
{
    Field u = in;
    inferInPlace(u, PropagationWorkspace::threadLocal());
    return u;
}

Field
FixedModulationLayer::backward(const Field &grad_out)
{
    Field g = grad_out;
    backwardInPlace(g, PropagationWorkspace::threadLocal());
    return g;
}

void
FixedModulationLayer::forwardInPlace(Field &u, bool,
                                     PropagationWorkspace &workspace)
{
    inferInPlace(u, workspace);
}

void
FixedModulationLayer::inferInPlace(Field &u,
                                   PropagationWorkspace &workspace) const
{
    propagator_->forwardInto(u, u, workspace);
    u.hadamard(modulation_);
}

void
FixedModulationLayer::backwardInPlace(Field &g,
                                      PropagationWorkspace &workspace)
{
    g.hadamardConj(modulation_);
    propagator_->adjointInto(g, g, workspace);
}

Json
FixedModulationLayer::toJson() const
{
    Json j;
    j["kind"] = Json(kind());
    Json mod;
    for (std::size_t i = 0; i < modulation_.size(); ++i) {
        mod.push(Json(modulation_[i].real()));
        mod.push(Json(modulation_[i].imag()));
    }
    j["modulation"] = std::move(mod);
    return j;
}

namespace {

/** Per-pixel fabrication perturbation of one modulation state. */
Complex
perturb(Complex m, const FabricationVariation &variation, Rng *rng)
{
    if (rng == nullptr)
        return m;
    Real dphi = variation.phase_sigma > 0
                    ? rng->normal(0, variation.phase_sigma)
                    : 0.0;
    Real da = variation.amplitude_sigma > 0
                  ? rng->normal(0, variation.amplitude_sigma)
                  : 0.0;
    return m * std::polar(Real(1) + da, dphi);
}

/** Clone a model's spec/laser/detector into an empty hardware model. */
DonnModel
cloneShell(const DonnModel &model)
{
    DonnModel out(model.spec(), model.laser());
    if (model.detector().numClasses() > 0)
        out.setDetector(model.detector());
    return out;
}

} // namespace

DonnModel
deployRaw(const DonnModel &model, const SlmDevice &device,
          const FabricationVariation &variation, Rng *rng,
          CalibrationMode mode)
{
    DonnModel hw = cloneShell(model);
    for (std::size_t i = 0; i < model.depth(); ++i) {
        const auto *raw =
            dynamic_cast<const DiffractiveLayer *>(model.layer(i));
        if (raw == nullptr)
            throw std::invalid_argument(
                "deployRaw expects diffractive layers only");
        const RealMap &phase = raw->phase();
        Field modulation(phase.rows(), phase.cols());
        for (std::size_t p = 0; p < phase.size(); ++p) {
            std::size_t level = mode == CalibrationMode::Calibrated
                                    ? device.levelForPhase(phase[p])
                                    : device.levelAssumingLinear(phase[p]);
            Complex m = device.lut().levels[level] * raw->gamma();
            modulation[p] = perturb(m, variation, rng);
        }
        hw.addLayer(std::make_unique<FixedModulationLayer>(
            hw.hopPropagator(), std::move(modulation)));
    }
    return hw;
}

DonnModel
deployCodesign(const DonnModel &model, const FabricationVariation &variation,
               Rng *rng)
{
    DonnModel hw = cloneShell(model);
    for (std::size_t i = 0; i < model.depth(); ++i) {
        const auto *cd = dynamic_cast<const CodesignLayer *>(model.layer(i));
        if (cd == nullptr)
            throw std::invalid_argument(
                "deployCodesign expects codesign layers only");
        std::vector<std::size_t> levels = cd->levelIndices();
        std::size_t n = cd->sideLength();
        Field modulation(n, n);
        for (std::size_t p = 0; p < levels.size(); ++p) {
            Complex m = cd->lut().levels[levels[p]] * cd->gamma();
            modulation[p] = perturb(m, variation, rng);
        }
        hw.addLayer(std::make_unique<FixedModulationLayer>(
            hw.hopPropagator(), std::move(modulation)));
    }
    return hw;
}

Real
evaluateDeployed(DonnModel &deployed, const ClassDataset &data,
                 const CmosDetector &cmos, Rng *rng)
{
    if (data.size() == 0)
        return 0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        Field u = deployed.forwardField(deployed.encode(data.images[i]),
                                        false);
        RealMap digitized = cmos.measure(u.intensity(), rng);
        std::vector<Real> logits =
            deployed.detector().readoutFromIntensity(digitized);
        int pred = static_cast<int>(
            std::max_element(logits.begin(), logits.end()) - logits.begin());
        if (pred == data.labels[i])
            ++correct;
    }
    return static_cast<Real>(correct) / data.size();
}

RealMap
captureDetectorImage(DonnModel &deployed, const RealMap &image,
                     const CmosDetector &cmos, Rng *rng)
{
    Field u = deployed.forwardField(deployed.encode(image), false);
    return cmos.measure(u.intensity(), rng);
}

} // namespace lightridge
