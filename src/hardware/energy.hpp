/**
 * @file
 * Energy-efficiency model for Table 4 (fps/Watt comparisons).
 *
 * DONN inference is all-optical: the diffractive layers are passive, so
 * the only electrical consumers are the CW laser source and the camera.
 * fps/Watt = frame rate / (laser + detector power). Digital platform
 * rows use the published figures from the paper for context plus
 * locally measured CPU numbers from the NN baseline.
 */
#pragma once

#include <string>
#include <vector>

#include "utils/types.hpp"

namespace lightridge {

/** Power/throughput of one inference platform. */
struct PlatformPoint
{
    std::string name;
    Real fps = 0;
    Real watts = 0;

    Real fpsPerWatt() const { return watts > 0 ? fps / watts : 0; }
};

/** All-optical DONN prototype energy model. */
struct DonnEnergyModel
{
    Real laser_watts = 5e-3;   ///< CW 532 nm source (~5 mW)
    Real detector_watts = 1.0; ///< CMOS @ 1000 fps (max)
    Real fps = 1000.0;         ///< camera-limited frame rate

    Real
    fpsPerWatt() const
    {
        return fps / (laser_watts + detector_watts);
    }
};

/**
 * Published digital-platform reference points from the paper's Table 4
 * (fps/Watt for MLP and CNN on each platform). Quoted, not measured:
 * those devices are not available in this environment (see DESIGN.md).
 */
inline std::vector<PlatformPoint>
paperDigitalReference()
{
    // fps/Watt values from Table 4 expressed with watts = 1 so that
    // fpsPerWatt() reproduces the published numbers directly.
    return {
        {"GPU 2080 Ti (MLP)", 3.3, 1.0},
        {"GPU 2080 Ti (CNN)", 3.8, 1.0},
        {"GPU 3090 Ti (MLP)", 2.4, 1.0},
        {"GPU 3090 Ti (CNN)", 1.7, 1.0},
        {"CPU Xeon (MLP)", 1.5, 1.0},
        {"CPU Xeon (CNN)", 2.0, 1.0},
        {"EdgeTPU (MLP)", 23.0, 1.0},
        {"EdgeTPU (CNN)", 26.0, 1.0},
    };
}

} // namespace lightridge
