#include "hardware/slm.hpp"

#include <cmath>
#include <stdexcept>

namespace lightridge {

SlmDevice::SlmDevice(std::size_t levels, Real phase_span, Real gamma_curve,
                     Real amp_coupling)
{
    if (levels == 0)
        throw std::invalid_argument("SlmDevice: zero levels");
    lut_.levels.resize(levels);
    for (std::size_t k = 0; k < levels; ++k) {
        Real x = static_cast<Real>(k) / static_cast<Real>(levels - 1 == 0
                                                              ? 1
                                                              : levels - 1);
        // Nonlinear measured-style response curve.
        Real phi = phase_span * std::pow(x, gamma_curve);
        // Twisted-nematic amplitude coupling: transmission dips midway
        // through the retardation range.
        Real amp = 1.0 - amp_coupling * std::sin(phi / 2) * std::sin(phi / 2);
        lut_.levels[k] = std::polar(amp, phi);
    }
}

SlmDevice
SlmDevice::holoeyeLc2012(std::size_t levels)
{
    // Measured LC 2012 campaigns report a slightly compressed span close
    // to [0, 2*pi], a super-linear response knee, and ~20% amplitude dip.
    return SlmDevice(levels, 0.95 * kTwoPi, 1.5, 0.2);
}

SlmDevice
SlmDevice::idealPhaseOnly(std::size_t levels)
{
    // Spread levels over [0, 2*pi) without duplicating the wrap point:
    // the top level sits one step short of 2*pi.
    Real span = kTwoPi * static_cast<Real>(levels - 1) /
                static_cast<Real>(levels);
    return SlmDevice(levels, span, 1.0, 0.0);
}

Real
SlmDevice::phaseOfLevel(std::size_t k) const
{
    return std::arg(lut_.levels.at(k));
}

std::size_t
SlmDevice::levelForPhase(Real phi) const
{
    return lut_.nearestPhase(phi);
}

std::size_t
SlmDevice::levelAssumingLinear(Real phi) const
{
    Real wrapped = std::fmod(phi, kTwoPi);
    if (wrapped < 0)
        wrapped += kTwoPi;
    auto level = static_cast<std::size_t>(
        std::round(wrapped / kTwoPi * static_cast<Real>(lut_.size() - 1)));
    return std::min(level, lut_.size() - 1);
}

Real
SlmDevice::thicknessForPhase(Real phi, Real wavelength,
                             Real refractive_index)
{
    // Wrap into [0, 2*pi) first: printed masks realize modulo-2*pi phase.
    Real wrapped = std::fmod(phi, kTwoPi);
    if (wrapped < 0)
        wrapped += kTwoPi;
    return wrapped * wavelength / (kTwoPi * (refractive_index - 1));
}

} // namespace lightridge
