/**
 * @file
 * Fabrication/deployment file generation (lr.model.to_system).
 *
 * For SLM systems the export is the per-layer control-level array (the
 * voltages applied to the panel); for THz systems it is the 3-D printed
 * mask thickness array. Each layer additionally gets a PGM visualization
 * (lr.layers.view()) and the bundle carries a JSON manifest with the
 * system/fabrication specification.
 */
#pragma once

#include <string>

#include "core/model.hpp"
#include "hardware/slm.hpp"

namespace lightridge {

/** Export targets supported by toSystem(). */
enum class DeployTarget { SlmVoltages, ThzMaskThickness };

/** Options for the fabrication dump. */
struct ToSystemOptions
{
    DeployTarget target = DeployTarget::SlmVoltages;
    Real refractive_index = 1.7; ///< printed material (THz masks)
    bool write_views = true;     ///< also dump PGM phase visualizations
};

/**
 * Write the fabrication bundle for a trained model into `dir`:
 * manifest.json plus per-layer layer<k>.csv (+ layer<k>.pgm).
 * Works for raw-diffractive and codesign layers.
 * @return false on I/O failure or unsupported layer kinds.
 */
bool toSystem(const DonnModel &model, const SlmDevice &device,
              const std::string &dir, const ToSystemOptions &options = {});

/** Dump one phase map as a normalized PGM (lr.layers.view()). */
bool writePhaseView(const RealMap &phase, const std::string &path);

} // namespace lightridge
