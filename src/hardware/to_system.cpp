#include "hardware/to_system.hpp"

#include <filesystem>
#include <fstream>

#include "utils/image_io.hpp"

namespace lightridge {

bool
writePhaseView(const RealMap &phase, const std::string &path)
{
    GrayImage img = toGray(phase.raw(), phase.rows(), phase.cols());
    return writePgm(path, img);
}

namespace {

/** Phase map of one layer regardless of its kind. */
bool
layerPhase(const Layer *layer, const SlmDevice &device, RealMap *phase,
           std::vector<std::size_t> *levels)
{
    if (const auto *raw = dynamic_cast<const DiffractiveLayer *>(layer)) {
        *phase = raw->phase();
        levels->resize(phase->size());
        for (std::size_t i = 0; i < phase->size(); ++i)
            (*levels)[i] = device.levelForPhase((*phase)[i]);
        return true;
    }
    if (const auto *cd = dynamic_cast<const CodesignLayer *>(layer)) {
        *levels = cd->levelIndices();
        std::size_t n = cd->sideLength();
        *phase = RealMap(n, n);
        for (std::size_t i = 0; i < levels->size(); ++i)
            (*phase)[i] = std::arg(cd->lut().levels[(*levels)[i]]);
        return true;
    }
    return false;
}

} // namespace

bool
toSystem(const DonnModel &model, const SlmDevice &device,
         const std::string &dir, const ToSystemOptions &options)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);

    Json manifest;
    manifest["spec"] = model.spec().toJson();
    manifest["wavelength"] = Json(model.laser().wavelength);
    manifest["levels"] = Json(device.levels());
    manifest["target"] = Json(options.target == DeployTarget::SlmVoltages
                                  ? "slm_voltages"
                                  : "thz_mask_thickness");
    Json layer_files;

    for (std::size_t li = 0; li < model.depth(); ++li) {
        RealMap phase;
        std::vector<std::size_t> levels;
        if (!layerPhase(model.layer(li), device, &phase, &levels))
            return false;

        const std::string base = dir + "/layer" + std::to_string(li);
        std::ofstream csv(base + ".csv");
        if (!csv)
            return false;
        const std::size_t n = phase.rows();
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < n; ++c) {
                if (c)
                    csv << ',';
                if (options.target == DeployTarget::SlmVoltages) {
                    csv << levels[r * n + c];
                } else {
                    csv << SlmDevice::thicknessForPhase(
                        phase(r, c), model.laser().wavelength,
                        options.refractive_index);
                }
            }
            csv << '\n';
        }
        if (!csv)
            return false;

        if (options.write_views &&
            !writePhaseView(phase, base + ".pgm"))
            return false;
        layer_files.push(Json(base + ".csv"));
    }
    manifest["layers"] = std::move(layer_files);
    return manifest.save(dir + "/manifest.json");
}

} // namespace lightridge
