/**
 * @file
 * Spatial light modulator device model (paper Section 2.2).
 *
 * A twisted-nematic SLM (e.g. HOLOEYE LC 2012, the device used for the
 * paper's visible-range prototype) maps a discrete control level to a
 * phase retardation, with three non-idealities the codesign algorithm
 * must absorb:
 *
 *  1. a nonlinear (measured) phase-vs-level response curve,
 *  2. coupled amplitude modulation (phase and transmission are not
 *     independent in twisted-nematic cells), and
 *  3. per-pixel fabrication variation ("optical devices hardly have
 *     unified optical response ... due to fabrication errors").
 *
 * The model also covers 3-D printed THz phase masks: phase converts to
 * printed material thickness t = phi * lambda / (2*pi*(n_index - 1)).
 */
#pragma once

#include <cstddef>
#include <vector>

#include "core/device_lut.hpp"
#include "tensor/field.hpp"
#include "utils/rng.hpp"
#include "utils/types.hpp"

namespace lightridge {

/** Discrete-level optical modulator description. */
class SlmDevice
{
  public:
    /**
     * @param levels number of control levels (8-bit SLM: 256)
     * @param phase_span total phase range covered [rad]
     * @param gamma_curve response nonlinearity exponent (1 = linear)
     * @param amp_coupling depth of the coupled amplitude modulation
     *        (0 = ideal phase-only device)
     */
    SlmDevice(std::size_t levels, Real phase_span, Real gamma_curve,
              Real amp_coupling);

    /** The LC 2012-like visible-range device of the paper's prototype. */
    static SlmDevice holoeyeLc2012(std::size_t levels = 256);

    /** Idealized phase-only device (for ablations). */
    static SlmDevice idealPhaseOnly(std::size_t levels = 256);

    std::size_t levels() const { return lut_.size(); }

    /** Realizable complex modulation per control level. */
    const DeviceLut &lut() const { return lut_; }

    /** Phase of control level k. */
    Real phaseOfLevel(std::size_t k) const;

    /** Control level whose phase is nearest to phi (naive quantization). */
    std::size_t levelForPhase(Real phi) const;

    /**
     * Control level an uncalibrated user would pick: assumes the device
     * response is linear over [0, 2*pi), i.e. level = phi/2pi * K. On a
     * real (nonlinear, compressed-span) device this produces systematic
     * phase errors - the out-of-box deployment gap of Figure 1 that
     * manual hardware calibration (or codesign training) removes.
     */
    std::size_t levelAssumingLinear(Real phi) const;

    /**
     * Printed-mask thickness realizing phase phi at the given wavelength
     * for a material of the given refractive index (THz deployments).
     */
    static Real thicknessForPhase(Real phi, Real wavelength,
                                  Real refractive_index = 1.7);

  private:
    DeviceLut lut_;
};

/** Per-pixel fabrication variation amplitudes. */
struct FabricationVariation
{
    Real phase_sigma = 0.0;     ///< Gaussian phase error [rad]
    Real amplitude_sigma = 0.0; ///< Gaussian relative amplitude error

    /** Typical prototype-grade variation. */
    static FabricationVariation
    typical()
    {
        return FabricationVariation{0.08, 0.03};
    }

    /** Perfect fabrication (for ablations). */
    static FabricationVariation
    none()
    {
        return FabricationVariation{0.0, 0.0};
    }
};

} // namespace lightridge
