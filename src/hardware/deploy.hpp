/**
 * @file
 * Hardware deployment simulator: the software-to-hardware realization gap.
 *
 * deployRaw() models what happens when a raw-trained DONN is pushed onto a
 * physical device: continuous trained phases are quantized to the nearest
 * available device level, the device's coupled amplitude response applies,
 * and per-pixel fabrication variation perturbs every unit. deployCodesign()
 * does the same for a codesign-trained model, whose argmax states are
 * realizable exactly - only fabrication variation remains. Comparing the
 * two reproduces the out-of-box deployment-accuracy story of the paper's
 * Figure 1 (>= 30% degradation without codesign, ~3% with).
 */
#pragma once

#include <memory>

#include "core/dataset.hpp"
#include "core/model.hpp"
#include "hardware/cmos.hpp"
#include "hardware/slm.hpp"

namespace lightridge {

/**
 * Frozen complex modulation layer used by deployed (hardware) models:
 * free-space hop followed by a fixed per-unit complex multiplication.
 * Not trainable; backward() is provided for completeness (pure adjoint).
 */
class FixedModulationLayer : public Layer
{
  public:
    FixedModulationLayer(std::shared_ptr<const Propagator> propagator,
                         Field modulation);

    std::string kind() const override { return "fixed"; }
    Field forward(const Field &in, bool training) override;
    Field backward(const Field &grad_out) override;
    Field infer(const Field &in) const override;
    void forwardInPlace(Field &u, bool training,
                        PropagationWorkspace &workspace) override;
    void backwardInPlace(Field &g, PropagationWorkspace &workspace) override;
    void inferInPlace(Field &u,
                      PropagationWorkspace &workspace) const override;
    LayerPtr clone() const override
    {
        return std::make_unique<FixedModulationLayer>(*this);
    }
    Json toJson() const override;

    const Field &modulation() const { return modulation_; }

  private:
    std::shared_ptr<const Propagator> propagator_;
    Field modulation_;
};

/** How trained phases are mapped to device control levels. */
enum class CalibrationMode
{
    /**
     * Out-of-box: assume a linear device response (no response-curve
     * measurement). This is what Fig. 1 calls deployment *before* the
     * expensive manual hardware calibration.
     */
    OutOfBox,
    /** Manually calibrated: nearest level by measured phase. */
    Calibrated,
};

/**
 * Deploy a raw-trained model onto a device: level quantization (per the
 * calibration mode) + amplitude coupling + fabrication variation.
 * Returns the hardware model.
 */
DonnModel deployRaw(const DonnModel &model, const SlmDevice &device,
                    const FabricationVariation &variation, Rng *rng,
                    CalibrationMode mode = CalibrationMode::OutOfBox);

/**
 * Deploy a codesign-trained model: argmax device states (exact) +
 * fabrication variation only.
 */
DonnModel deployCodesign(const DonnModel &model,
                         const FabricationVariation &variation, Rng *rng);

/**
 * Accuracy of a deployed model with the CMOS detector in the loop
 * (shot/read noise + ADC quantization before region integration).
 */
Real evaluateDeployed(DonnModel &deployed, const ClassDataset &data,
                      const CmosDetector &cmos, Rng *rng);

/**
 * Detector-plane intensity as captured by the hardware camera for one
 * input image; used for the Fig. 6 simulation-vs-measurement comparison.
 */
RealMap captureDetectorImage(DonnModel &deployed, const RealMap &image,
                             const CmosDetector &cmos, Rng *rng);

} // namespace lightridge
