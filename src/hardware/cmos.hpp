/**
 * @file
 * CMOS camera model (the paper's CS165MU1 analog-to-digital interface).
 *
 * The detector converts the analog light intensity pattern into digital
 * counts: photon shot noise (Poisson), additive Gaussian read noise, and
 * ADC quantization with saturation. This is the component that bounds the
 * practical computation efficiency of a DONN (Section 2).
 */
#pragma once

#include "tensor/field.hpp"
#include "utils/rng.hpp"
#include "utils/types.hpp"

namespace lightridge {

/** Parameterized CMOS sensor + ADC model. */
struct CmosDetector
{
    Real full_well = 10000.0; ///< photons mapping to ADC full scale
    Real read_noise = 5.0;    ///< RMS read noise [photons]
    int adc_bits = 8;         ///< quantizer resolution
    Real exposure_gain = 1.0; ///< photons per unit optical intensity

    /** Noise-free reference sensor (for ablations). */
    static CmosDetector
    ideal()
    {
        CmosDetector d;
        d.read_noise = 0;
        d.adc_bits = 16;
        return d;
    }

    /** The prototype-grade camera used in the deployment experiments. */
    static CmosDetector
    cs165mu1()
    {
        return CmosDetector{};
    }

    /**
     * Digitize an intensity pattern: exposure scaling, shot noise, read
     * noise, then ADC quantization to [0, 2^bits - 1], returned rescaled
     * back to intensity units. Pass rng = nullptr for noiseless
     * quantization-only behaviour.
     */
    RealMap measure(const RealMap &intensity, Rng *rng) const;
};

} // namespace lightridge
