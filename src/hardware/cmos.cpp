#include "hardware/cmos.hpp"

#include <algorithm>
#include <cmath>

namespace lightridge {

RealMap
CmosDetector::measure(const RealMap &intensity, Rng *rng) const
{
    RealMap out(intensity.rows(), intensity.cols());
    // Auto-exposure: map the peak intensity near full well.
    Real peak = intensity.max();
    Real photons_per_unit =
        peak > 0 ? exposure_gain * full_well * 0.8 / peak : 0.0;
    const Real max_code = std::pow(2.0, adc_bits) - 1;
    const Real photons_per_code = full_well / max_code;

    for (std::size_t i = 0; i < intensity.size(); ++i) {
        Real photons = intensity[i] * photons_per_unit;
        if (rng != nullptr) {
            // Shot noise: Poisson for small counts, Gaussian approx above.
            if (photons > 0 && photons < 1e6) {
                photons = photons < 1000
                              ? static_cast<Real>(rng->poisson(photons))
                              : photons + rng->normal(0, std::sqrt(photons));
            }
            photons += rng->normal(0, read_noise);
        }
        Real code = std::clamp(std::round(photons / photons_per_code),
                               Real(0), max_code);
        // Back to intensity units so readout stays comparable.
        out[i] = photons_per_unit > 0
                     ? code * photons_per_code / photons_per_unit
                     : 0.0;
    }
    return out;
}

} // namespace lightridge
