/**
 * @file
 * 2-D complex wavefield and real-valued map containers.
 *
 * A Field is the fundamental tensor of the framework: one complex sample
 * per diffraction unit, E(x, y) = A * exp(j * theta). RealMap carries phase
 * masks, intensity patterns, labels, and device LUT indices.
 */
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "utils/types.hpp"

namespace lightridge {

/**
 * Debug accounting of Field buffer heap allocations.
 *
 * Compiled in under the CMake option LIGHTRIDGE_ALLOC_STATS: every heap
 * allocation made for a Field's sample buffer bumps a process-wide atomic
 * counter, which the zero-allocation regression tests read to assert that
 * steady-state `Propagator::forwardInto` calls and full in-place train
 * steps allocate nothing. Without the option the counting allocator is
 * not even instantiated — Field uses a plain std::vector and the counter
 * functions are constant no-ops, so release builds pay zero cost.
 */
bool fieldAllocStatsEnabled();

/** Field buffer allocations since process start / last reset (0 when
 *  stats are compiled out). */
std::uint64_t fieldAllocCount();

/** Reset the allocation counter to zero (no-op when compiled out). */
void resetFieldAllocCount();

#if defined(LIGHTRIDGE_ALLOC_STATS)
namespace detail {

void countFieldAllocation();

/** std::allocator shim that counts allocations of Field buffers. */
template <typename T> struct CountingAllocator
{
    using value_type = T;

    CountingAllocator() = default;
    template <typename U>
    CountingAllocator(const CountingAllocator<U> &)
    {}

    T *
    allocate(std::size_t n)
    {
        countFieldAllocation();
        return std::allocator<T>().allocate(n);
    }

    void
    deallocate(T *p, std::size_t n)
    {
        std::allocator<T>().deallocate(p, n);
    }

    template <typename U>
    bool
    operator==(const CountingAllocator<U> &) const
    {
        return true;
    }
};

} // namespace detail

using FieldBuffer = std::vector<Complex, detail::CountingAllocator<Complex>>;
#else
using FieldBuffer = std::vector<Complex>;
#endif

/** Dense row-major real-valued 2-D map. */
class RealMap
{
  public:
    RealMap() = default;

    /** Create a rows-by-cols map filled with the given value. */
    RealMap(std::size_t rows, std::size_t cols, Real fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    Real &operator()(std::size_t r, std::size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }
    Real operator()(std::size_t r, std::size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }
    Real &operator[](std::size_t i) { return data_[i]; }
    Real operator[](std::size_t i) const { return data_[i]; }

    Real *data() { return data_.data(); }
    const Real *data() const { return data_.data(); }
    std::vector<Real> &raw() { return data_; }
    const std::vector<Real> &raw() const { return data_; }

    /** Set every element to the given value. */
    void fill(Real value);

    /** Sum of all elements. */
    Real sum() const;

    /** Largest element (0 for empty maps). */
    Real max() const;

    /** Smallest element (0 for empty maps). */
    Real min() const;

    /** Arithmetic mean (0 for empty maps). */
    Real mean() const;

    /** Elementwise in-place scale. */
    RealMap &operator*=(Real s);

    /** Elementwise in-place add. */
    RealMap &operator+=(const RealMap &other);

    /** Elementwise in-place subtract. */
    RealMap &operator-=(const RealMap &other);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<Real> data_;
};

/** Dense row-major complex-valued 2-D wavefield. */
class Field
{
  public:
    Field() = default;

    /** Create a rows-by-cols field filled with the given value. */
    Field(std::size_t rows, std::size_t cols, Complex fill = Complex{0, 0})
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    Complex &operator()(std::size_t r, std::size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }
    Complex operator()(std::size_t r, std::size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }
    Complex &operator[](std::size_t i) { return data_[i]; }
    Complex operator[](std::size_t i) const { return data_[i]; }

    Complex *data() { return data_.data(); }
    const Complex *data() const { return data_.data(); }

    /** Set every element to the given value. */
    void fill(Complex value);

    /** Elementwise in-place scale by a real factor. */
    Field &operator*=(Real s);

    /** Elementwise in-place scale by a complex factor. */
    Field &operator*=(Complex s);

    /** Elementwise in-place add. */
    Field &operator+=(const Field &other);

    /** Elementwise in-place subtract. */
    Field &operator-=(const Field &other);

    /**
     * Elementwise in-place Hadamard product (complex MM of the paper).
     * Dispatches through the FFT kernel layer: the Simd mode runs the
     * vectorized interleaved complex-multiply kernel, Scalar the
     * reference std::complex loop (see fft/kernels.hpp for the
     * agreement contract between the two).
     */
    Field &hadamard(const Field &other);

    /** Elementwise in-place product with the conjugate of other. */
    Field &hadamardConj(const Field &other);

    /** Per-sample intensity |E|^2. */
    RealMap intensity() const;

    /** Per-sample amplitude |E|. */
    RealMap amplitude() const;

    /** Per-sample phase arg(E) in (-pi, pi]. */
    RealMap phase() const;

    /** Total optical power sum |E|^2 over the field. */
    Real power() const;

    /** Construct a field from amplitude and phase maps. */
    static Field fromPolar(const RealMap &amplitude, const RealMap &phase);

    /** Construct a field from an amplitude map with zero phase. */
    static Field fromAmplitude(const RealMap &amplitude);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    FieldBuffer data_;
};

/** Maximum absolute elementwise difference between two fields. */
Real maxAbsDiff(const Field &a, const Field &b);

/** Maximum absolute elementwise difference between two maps. */
Real maxAbsDiff(const RealMap &a, const RealMap &b);

/**
 * Pearson correlation between two equally sized maps; 1.0 for identical
 * patterns. Used to score simulation-vs-hardware detector agreement (Fig 6).
 */
Real correlation(const RealMap &a, const RealMap &b);

/**
 * Bilinearly resize a map to the given shape. Used to embed 28x28 dataset
 * images into the system resolution (e.g. 200x200) as the paper does.
 */
RealMap resizeBilinear(const RealMap &in, std::size_t rows, std::size_t cols);

/**
 * Embed a map centered inside a larger zero map (no scaling). pad must be
 * at least the input size in both dimensions.
 */
RealMap embedCentered(const RealMap &in, std::size_t rows, std::size_t cols);

} // namespace lightridge
