#include "tensor/field.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "fft/kernels.hpp"

namespace lightridge {

#if defined(LIGHTRIDGE_ALLOC_STATS)

namespace {

std::atomic<std::uint64_t> g_field_allocs{0};

} // namespace

namespace detail {

void
countFieldAllocation()
{
    g_field_allocs.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

bool
fieldAllocStatsEnabled()
{
    return true;
}

std::uint64_t
fieldAllocCount()
{
    return g_field_allocs.load(std::memory_order_relaxed);
}

void
resetFieldAllocCount()
{
    g_field_allocs.store(0, std::memory_order_relaxed);
}

#else

bool
fieldAllocStatsEnabled()
{
    return false;
}

std::uint64_t
fieldAllocCount()
{
    return 0;
}

void
resetFieldAllocCount()
{
}

#endif

void
RealMap::fill(Real value)
{
    std::fill(data_.begin(), data_.end(), value);
}

Real
RealMap::sum() const
{
    Real total = 0;
    for (Real v : data_)
        total += v;
    return total;
}

Real
RealMap::max() const
{
    if (data_.empty())
        return 0;
    return *std::max_element(data_.begin(), data_.end());
}

Real
RealMap::min() const
{
    if (data_.empty())
        return 0;
    return *std::min_element(data_.begin(), data_.end());
}

Real
RealMap::mean() const
{
    return data_.empty() ? 0 : sum() / static_cast<Real>(data_.size());
}

RealMap &
RealMap::operator*=(Real s)
{
    for (Real &v : data_)
        v *= s;
    return *this;
}

RealMap &
RealMap::operator+=(const RealMap &other)
{
    assert(size() == other.size());
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

RealMap &
RealMap::operator-=(const RealMap &other)
{
    assert(size() == other.size());
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

void
Field::fill(Complex value)
{
    std::fill(data_.begin(), data_.end(), value);
}

Field &
Field::operator*=(Real s)
{
    for (Complex &v : data_)
        v *= s;
    return *this;
}

Field &
Field::operator*=(Complex s)
{
    for (Complex &v : data_)
        v *= s;
    return *this;
}

Field &
Field::operator+=(const Field &other)
{
    assert(size() == other.size());
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Field &
Field::operator-=(const Field &other)
{
    assert(size() == other.size());
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

Field &
Field::hadamard(const Field &other)
{
    assert(size() == other.size());
    if (fftKernelMode() == FftKernelMode::Simd) {
        kernels::cmulInterleaved(
            reinterpret_cast<Real *>(data_.data()),
            reinterpret_cast<const Real *>(other.data_.data()),
            data_.size());
        return *this;
    }
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] *= other.data_[i];
    return *this;
}

Field &
Field::hadamardConj(const Field &other)
{
    assert(size() == other.size());
    if (fftKernelMode() == FftKernelMode::Simd) {
        kernels::cmulConjInterleaved(
            reinterpret_cast<Real *>(data_.data()),
            reinterpret_cast<const Real *>(other.data_.data()),
            data_.size());
        return *this;
    }
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] *= std::conj(other.data_[i]);
    return *this;
}

RealMap
Field::intensity() const
{
    RealMap out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out[i] = std::norm(data_[i]);
    return out;
}

RealMap
Field::amplitude() const
{
    RealMap out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out[i] = std::abs(data_[i]);
    return out;
}

RealMap
Field::phase() const
{
    RealMap out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out[i] = std::arg(data_[i]);
    return out;
}

Real
Field::power() const
{
    Real total = 0;
    for (const Complex &v : data_)
        total += std::norm(v);
    return total;
}

Field
Field::fromPolar(const RealMap &amplitude, const RealMap &phase)
{
    assert(amplitude.rows() == phase.rows() &&
           amplitude.cols() == phase.cols());
    Field out(amplitude.rows(), amplitude.cols());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = std::polar(amplitude[i], phase[i]);
    return out;
}

Field
Field::fromAmplitude(const RealMap &amplitude)
{
    Field out(amplitude.rows(), amplitude.cols());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = Complex{amplitude[i], 0};
    return out;
}

Real
maxAbsDiff(const Field &a, const Field &b)
{
    assert(a.size() == b.size());
    Real worst = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    return worst;
}

Real
maxAbsDiff(const RealMap &a, const RealMap &b)
{
    assert(a.size() == b.size());
    Real worst = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    return worst;
}

Real
correlation(const RealMap &a, const RealMap &b)
{
    assert(a.size() == b.size() && a.size() > 0);
    Real mean_a = a.mean();
    Real mean_b = b.mean();
    Real cov = 0, var_a = 0, var_b = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        Real da = a[i] - mean_a;
        Real db = b[i] - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if (var_a <= 0 || var_b <= 0)
        return var_a == var_b ? 1.0 : 0.0;
    return cov / std::sqrt(var_a * var_b);
}

RealMap
resizeBilinear(const RealMap &in, std::size_t rows, std::size_t cols)
{
    if (in.rows() == 0 || in.cols() == 0)
        throw std::invalid_argument("resizeBilinear: empty input");
    RealMap out(rows, cols);
    const Real row_scale = static_cast<Real>(in.rows()) / rows;
    const Real col_scale = static_cast<Real>(in.cols()) / cols;
    for (std::size_t r = 0; r < rows; ++r) {
        Real src_r = (r + Real(0.5)) * row_scale - Real(0.5);
        src_r = std::clamp<Real>(src_r, 0, in.rows() - 1);
        std::size_t r0 = static_cast<std::size_t>(src_r);
        std::size_t r1 = std::min(r0 + 1, in.rows() - 1);
        Real fr = src_r - r0;
        for (std::size_t c = 0; c < cols; ++c) {
            Real src_c = (c + Real(0.5)) * col_scale - Real(0.5);
            src_c = std::clamp<Real>(src_c, 0, in.cols() - 1);
            std::size_t c0 = static_cast<std::size_t>(src_c);
            std::size_t c1 = std::min(c0 + 1, in.cols() - 1);
            Real fc = src_c - c0;
            Real top = in(r0, c0) * (1 - fc) + in(r0, c1) * fc;
            Real bot = in(r1, c0) * (1 - fc) + in(r1, c1) * fc;
            out(r, c) = top * (1 - fr) + bot * fr;
        }
    }
    return out;
}

RealMap
embedCentered(const RealMap &in, std::size_t rows, std::size_t cols)
{
    if (rows < in.rows() || cols < in.cols())
        throw std::invalid_argument("embedCentered: target smaller than input");
    RealMap out(rows, cols);
    std::size_t r0 = (rows - in.rows()) / 2;
    std::size_t c0 = (cols - in.cols()) / 2;
    for (std::size_t r = 0; r < in.rows(); ++r)
        for (std::size_t c = 0; c < in.cols(); ++c)
            out(r0 + r, c0 + c) = in(r, c);
    return out;
}

} // namespace lightridge
