#include "fft/fft.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace lightridge {

namespace {

/** Largest prime factor handled by the direct mixed-radix path. */
constexpr std::size_t kMaxDirectRadix = 31;

/** Factorize n into primes in ascending order (2 repeated, etc.). */
std::vector<std::size_t>
factorize(std::size_t n)
{
    std::vector<std::size_t> factors;
    for (std::size_t p = 2; p * p <= n; p += (p == 2 ? 1 : 2)) {
        while (n % p == 0) {
            factors.push_back(p);
            n /= p;
        }
    }
    if (n > 1)
        factors.push_back(n);
    return factors;
}

/** Thread-local scratch buffer, grown on demand. */
Complex *
tlsScratch(std::size_t n)
{
    static thread_local std::vector<Complex> buffer;
    if (buffer.size() < n)
        buffer.resize(n);
    return buffer.data();
}

} // namespace

/**
 * Plan internals. Two strategies:
 *  - Mixed radix: recursion over 'factors', with a per-level twiddle table
 *    tw[level][i] = exp(-j*2*pi*i / n_level).
 *  - Bluestein: chirp-z over an internal power-of-two mixed-radix plan.
 */
struct FftPlan::Impl
{
    std::size_t n = 0;
    bool bluestein = false;

    // Mixed-radix state.
    std::vector<std::size_t> factors;
    std::vector<std::size_t> level_sizes;
    std::vector<std::vector<Complex>> twiddles; // per level, length n_level

    // Bluestein state.
    std::size_t m = 0;                      // power-of-two conv length
    std::vector<Complex> chirp;             // a_k = exp(-j*pi*k^2/n)
    std::vector<Complex> chirp_spectrum;    // FFT_m of conj-chirp kernel
    std::shared_ptr<const FftPlan> inner;   // power-of-two plan of length m

    void buildMixedRadix();
    void buildBluestein();
    void executeMixed(Complex *data) const;
    void recurse(const Complex *in, std::size_t in_stride, Complex *out,
                 std::size_t n_cur, std::size_t level) const;
    void combine(Complex *out, std::size_t n_cur, std::size_t p,
                 std::size_t level) const;
    void executeBluestein(Complex *data) const;
};

void
FftPlan::Impl::buildMixedRadix()
{
    factors = factorize(n);
    std::size_t cur = n;
    for (std::size_t p : factors) {
        level_sizes.push_back(cur);
        std::vector<Complex> table(cur);
        for (std::size_t i = 0; i < cur; ++i) {
            Real angle = -kTwoPi * static_cast<Real>(i) /
                         static_cast<Real>(cur);
            table[i] = Complex{std::cos(angle), std::sin(angle)};
        }
        twiddles.push_back(std::move(table));
        cur /= p;
    }
}

void
FftPlan::Impl::buildBluestein()
{
    bluestein = true;
    m = 1;
    while (m < 2 * n - 1)
        m <<= 1;
    // Power-of-two inner plans recur across Bluestein lengths (every prime
    // in [2^{k-1}, 2^k) shares the same conv length), so take them from the
    // shared cache.
    inner = acquireFftPlan(m);

    chirp.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
        // k^2 mod 2n keeps the argument small for precision.
        std::size_t k2 = (k * k) % (2 * n);
        Real angle = -kPi * static_cast<Real>(k2) / static_cast<Real>(n);
        chirp[k] = Complex{std::cos(angle), std::sin(angle)};
    }

    std::vector<Complex> kernel(m, Complex{0, 0});
    for (std::size_t k = 0; k < n; ++k) {
        Complex b = std::conj(chirp[k]);
        kernel[k] = b;
        if (k != 0)
            kernel[m - k] = b;
    }
    inner->forward(kernel.data());
    chirp_spectrum = std::move(kernel);
}

void
FftPlan::Impl::combine(Complex *out, std::size_t n_cur, std::size_t p,
                       std::size_t level) const
{
    const std::size_t m_cur = n_cur / p;
    const std::vector<Complex> &tw = twiddles[level];

    if (p == 2) {
        for (std::size_t k = 0; k < m_cur; ++k) {
            Complex a0 = out[k];
            Complex a1 = out[m_cur + k] * tw[k];
            out[k] = a0 + a1;
            out[m_cur + k] = a0 - a1;
        }
        return;
    }

    // Generic radix: gather p strided values, apply the p-point DFT with
    // twiddles folded in, scatter back to the same positions.
    Complex a[kMaxDirectRadix];
    std::size_t cursor[kMaxDirectRadix];
    std::size_t step[kMaxDirectRadix];
    for (std::size_t j = 1; j < p; ++j)
        step[j] = (j * m_cur) % n_cur;

    for (std::size_t k = 0; k < m_cur; ++k) {
        for (std::size_t j = 0; j < p; ++j)
            a[j] = out[j * m_cur + k];
        for (std::size_t j = 1; j < p; ++j)
            cursor[j] = (j * k) % n_cur;
        for (std::size_t t = 0; t < p; ++t) {
            Complex acc = a[0];
            for (std::size_t j = 1; j < p; ++j) {
                acc += a[j] * tw[cursor[j]];
                cursor[j] += step[j];
                if (cursor[j] >= n_cur)
                    cursor[j] -= n_cur;
            }
            out[t * m_cur + k] = acc;
        }
    }
}

void
FftPlan::Impl::recurse(const Complex *in, std::size_t in_stride, Complex *out,
                       std::size_t n_cur, std::size_t level) const
{
    if (n_cur == 1) {
        out[0] = in[0];
        return;
    }
    const std::size_t p = factors[level];
    const std::size_t m_cur = n_cur / p;
    for (std::size_t j = 0; j < p; ++j)
        recurse(in + j * in_stride, in_stride * p, out + j * m_cur, m_cur,
                level + 1);
    combine(out, n_cur, p, level);
}

void
FftPlan::Impl::executeMixed(Complex *data) const
{
    Complex *work = tlsScratch(n);
    recurse(data, 1, work, n, 0);
    std::copy(work, work + n, data);
}

void
FftPlan::Impl::executeBluestein(Complex *data) const
{
    // Scratch must not collide with the inner plan's own thread-local use,
    // so the convolution buffer is allocated past the inner plan's needs.
    std::vector<Complex> buffer(m, Complex{0, 0});
    for (std::size_t k = 0; k < n; ++k)
        buffer[k] = data[k] * chirp[k];
    inner->forward(buffer.data());
    for (std::size_t k = 0; k < m; ++k)
        buffer[k] *= chirp_spectrum[k];
    inner->inverse(buffer.data());
    for (std::size_t k = 0; k < n; ++k)
        data[k] = buffer[k] * chirp[k];
}

FftPlan::FftPlan(std::size_t n) : impl_(std::make_unique<Impl>())
{
    if (n == 0)
        throw std::invalid_argument("FftPlan: zero length");
    impl_->n = n;
    auto factors = factorize(n);
    bool smooth = factors.empty() ||
                  factors.back() <= kMaxDirectRadix;
    if (smooth)
        impl_->buildMixedRadix();
    else
        impl_->buildBluestein();
}

FftPlan::~FftPlan() = default;
FftPlan::FftPlan(FftPlan &&) noexcept = default;
FftPlan &FftPlan::operator=(FftPlan &&) noexcept = default;

std::size_t
FftPlan::size() const
{
    return impl_->n;
}

void
FftPlan::forward(Complex *data) const
{
    if (impl_->n == 1)
        return;
    if (impl_->bluestein)
        impl_->executeBluestein(data);
    else
        impl_->executeMixed(data);
}

void
FftPlan::inverse(Complex *data) const
{
    const std::size_t n = impl_->n;
    if (n == 1)
        return;
    for (std::size_t i = 0; i < n; ++i)
        data[i] = std::conj(data[i]);
    forward(data);
    const Real scale = Real(1) / static_cast<Real>(n);
    for (std::size_t i = 0; i < n; ++i)
        data[i] = std::conj(data[i]) * scale;
}

namespace {

/** Plan cache shared by every Fft2d / Bluestein inner plan in the process. */
struct PlanCache
{
    std::mutex mutex;
    std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>> plans;
};

PlanCache &
planCache()
{
    static PlanCache cache;
    return cache;
}

} // namespace

std::shared_ptr<const FftPlan>
acquireFftPlan(std::size_t n)
{
    PlanCache &cache = planCache();
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        auto it = cache.plans.find(n);
        if (it != cache.plans.end())
            return it->second;
    }
    // Build outside the lock: plan construction may itself acquire a
    // (smaller) inner plan via the Bluestein path, and large twiddle tables
    // should not serialize unrelated lookups.
    auto plan = std::make_shared<const FftPlan>(n);
    std::lock_guard<std::mutex> lock(cache.mutex);
    auto [it, inserted] = cache.plans.emplace(n, std::move(plan));
    return it->second;
}

std::size_t
fftPlanCacheSize()
{
    PlanCache &cache = planCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return cache.plans.size();
}

void
clearFftPlanCache()
{
    PlanCache &cache = planCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    cache.plans.clear();
}

Fft2d::Fft2d(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_plan_(acquireFftPlan(cols)),
      col_plan_(rows == cols ? row_plan_ : acquireFftPlan(rows))
{}

void
Fft2d::transformColumns(Field *field, bool inverse) const
{
    std::vector<Complex> column(rows_);
    for (std::size_t c = 0; c < cols_; ++c) {
        for (std::size_t r = 0; r < rows_; ++r)
            column[r] = (*field)(r, c);
        if (inverse)
            col_plan_->inverse(column.data());
        else
            col_plan_->forward(column.data());
        for (std::size_t r = 0; r < rows_; ++r)
            (*field)(r, c) = column[r];
    }
}

void
Fft2d::forward(Field *field) const
{
    assert(field->rows() == rows_ && field->cols() == cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        row_plan_->forward(field->data() + r * cols_);
    transformColumns(field, false);
}

void
Fft2d::inverse(Field *field) const
{
    assert(field->rows() == rows_ && field->cols() == cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        row_plan_->inverse(field->data() + r * cols_);
    transformColumns(field, true);
}

std::vector<Complex>
naiveDft(const std::vector<Complex> &input, int sign)
{
    const std::size_t n = input.size();
    std::vector<Complex> output(n, Complex{0, 0});
    for (std::size_t k = 0; k < n; ++k) {
        Complex acc{0, 0};
        for (std::size_t t = 0; t < n; ++t) {
            Real angle = sign * kTwoPi * static_cast<Real>((k * t) % n) /
                         static_cast<Real>(n);
            acc += input[t] * Complex{std::cos(angle), std::sin(angle)};
        }
        output[k] = acc;
    }
    return output;
}

namespace {

Field
circularShift(const Field &in, std::size_t dr, std::size_t dc)
{
    Field out(in.rows(), in.cols());
    for (std::size_t r = 0; r < in.rows(); ++r) {
        std::size_t rr = (r + dr) % in.rows();
        for (std::size_t c = 0; c < in.cols(); ++c) {
            std::size_t cc = (c + dc) % in.cols();
            out(rr, cc) = in(r, c);
        }
    }
    return out;
}

} // namespace

Field
fftshift(const Field &in)
{
    return circularShift(in, in.rows() / 2, in.cols() / 2);
}

Field
ifftshift(const Field &in)
{
    return circularShift(in, in.rows() - in.rows() / 2,
                         in.cols() - in.cols() / 2);
}

std::size_t
nextFastLength(std::size_t n)
{
    if (n == 0)
        return 1;
    for (;; ++n) {
        std::size_t rem = n;
        for (std::size_t p : {2, 3, 5, 7})
            while (rem % p == 0)
                rem /= p;
        if (rem == 1)
            return n;
    }
}

} // namespace lightridge
