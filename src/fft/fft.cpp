#include "fft/fft.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "utils/sync.hpp"
#include "utils/thread_pool.hpp"

namespace lightridge {

namespace {

/** Largest prime factor handled by the direct mixed-radix path. */
constexpr std::size_t kMaxDirectRadix = 31;

/** Factorize n into primes in ascending order (2 repeated, etc.). */
std::vector<std::size_t>
factorize(std::size_t n)
{
    std::vector<std::size_t> factors;
    for (std::size_t p = 2; p * p <= n; p += (p == 2 ? 1 : 2)) {
        while (n % p == 0) {
            factors.push_back(p);
            n /= p;
        }
    }
    if (n > 1)
        factors.push_back(n);
    return factors;
}

/**
 * Radix sequence for the SIMD engine: pairs of 2s fuse into radix-4
 * levels (half the combine passes over the dominant power-of-two part),
 * any leftover 2 and the odd prime factors follow unchanged.
 */
std::vector<std::size_t>
groupFactorsForSimd(const std::vector<std::size_t> &factors)
{
    std::size_t twos = 0;
    std::vector<std::size_t> grouped;
    for (std::size_t p : factors) {
        if (p == 2)
            ++twos;
        else
            grouped.push_back(p);
    }
    std::vector<std::size_t> out(twos / 2, 4);
    if (twos % 2 != 0)
        out.push_back(2);
    out.insert(out.end(), grouped.begin(), grouped.end());
    return out;
}

/** Thread-local scratch buffer, grown on demand. */
Complex *
tlsScratch(std::size_t n)
{
    static thread_local std::vector<Complex> buffer;
    if (buffer.size() < n)
        buffer.resize(n);
    return buffer.data();
}

/**
 * Thread-local split real/imag scratch for the SoA engine: recursion
 * output and a generic-radix staging block. One set per thread suffices
 * because plan execution uses it strictly nested (a combine finishes with
 * the staging block before its parent starts).
 */
struct SoaScratch
{
    std::vector<Real> out_re, out_im;
    std::vector<Real> stage_re, stage_im;

    void
    ensure(std::size_t n)
    {
        if (out_re.size() >= n)
            return;
        out_re.resize(n);
        out_im.resize(n);
        stage_re.resize(n);
        stage_im.resize(n);
    }
};

SoaScratch &
tlsSoaScratch(std::size_t n)
{
    static thread_local SoaScratch scratch;
    scratch.ensure(n);
    return scratch;
}

} // namespace

/**
 * Plan internals. Two strategies:
 *  - Mixed radix: recursion over 'factors', with a per-level twiddle table
 *    tw[level][i] = exp(-j*2*pi*i / n_level). The SIMD engine runs the
 *    same recursion over a radix-grouped factor sequence with split
 *    real/imag twiddle sub-tables feeding the SoA kernels.
 *  - Bluestein: chirp-z over an internal power-of-two mixed-radix plan.
 */
struct FftPlan::Impl
{
    std::size_t n = 0;
    bool bluestein = false;

    // Mixed-radix state (scalar reference path).
    std::vector<std::size_t> factors;
    std::vector<std::size_t> level_sizes;
    std::vector<std::vector<Complex>> twiddles; // per level, length n_level

    // Mixed-radix state for the SoA/SIMD engine. Per level with radix p
    // over blocks of length n_level = p * m:
    //  - simd_tw holds p-1 unit-stride sub-tables of length m each,
    //    tw[(j-1)*m + k] = exp(-j*2*pi*(j*k)/n_level), j in 1..p-1;
    //  - simd_dft holds the p*p DFT matrix exp(-j*2*pi*t*j/p) for the
    //    generic-radix kernel (unused for the specialized p = 2 and 4).
    std::vector<std::size_t> simd_factors;
    std::vector<std::vector<Real>> simd_tw_re, simd_tw_im;
    std::vector<std::vector<Real>> simd_dft_re, simd_dft_im;

    // Bluestein state.
    std::size_t m = 0;                      // power-of-two conv length
    std::vector<Complex> chirp;             // a_k = exp(-j*pi*k^2/n)
    std::vector<Complex> chirp_spectrum;    // FFT_m of conj-chirp kernel
    std::shared_ptr<const FftPlan> inner;   // power-of-two plan of length m

    void buildMixedRadix();
    void buildSimdTables();
    void buildBluestein();
    void executeMixed(Complex *data) const;
    void recurse(const Complex *in, std::size_t in_stride, Complex *out,
                 std::size_t n_cur, std::size_t level) const;
    void combine(Complex *out, std::size_t n_cur, std::size_t p,
                 std::size_t level) const;
    void executeMixedSimd(Complex *data) const;
    void recurseSoa(const Real *in, std::size_t in_stride, Real *out_re,
                    Real *out_im, std::size_t n_cur, std::size_t level,
                    SoaScratch *scratch) const;
    void combineSoa(Real *re, Real *im, std::size_t n_cur, std::size_t p,
                    std::size_t level, SoaScratch *scratch) const;
    void executeBluestein(Complex *data) const;
};

void
FftPlan::Impl::buildMixedRadix()
{
    factors = factorize(n);
    std::size_t cur = n;
    for (std::size_t p : factors) {
        level_sizes.push_back(cur);
        std::vector<Complex> table(cur);
        for (std::size_t i = 0; i < cur; ++i) {
            Real angle = -kTwoPi * static_cast<Real>(i) /
                         static_cast<Real>(cur);
            table[i] = Complex{std::cos(angle), std::sin(angle)};
        }
        twiddles.push_back(std::move(table));
        cur /= p;
    }
    if (simdKernelsCompiled())
        buildSimdTables();
}

void
FftPlan::Impl::buildSimdTables()
{
    simd_factors = groupFactorsForSimd(factors);
    std::size_t cur = n;
    for (std::size_t p : simd_factors) {
        const std::size_t m_cur = cur / p;
        std::vector<Real> tw_re((p - 1) * m_cur);
        std::vector<Real> tw_im((p - 1) * m_cur);
        for (std::size_t j = 1; j < p; ++j)
            for (std::size_t k = 0; k < m_cur; ++k) {
                std::size_t idx = (j * k) % cur; // keep the argument small
                Real angle = -kTwoPi * static_cast<Real>(idx) /
                             static_cast<Real>(cur);
                tw_re[(j - 1) * m_cur + k] = std::cos(angle);
                tw_im[(j - 1) * m_cur + k] = std::sin(angle);
            }
        simd_tw_re.push_back(std::move(tw_re));
        simd_tw_im.push_back(std::move(tw_im));

        std::vector<Real> dft_re, dft_im;
        if (p != 2 && p != 4) {
            dft_re.resize(p * p);
            dft_im.resize(p * p);
            for (std::size_t t = 0; t < p; ++t)
                for (std::size_t j = 0; j < p; ++j) {
                    Real angle = -kTwoPi *
                                 static_cast<Real>((t * j) % p) /
                                 static_cast<Real>(p);
                    dft_re[t * p + j] = std::cos(angle);
                    dft_im[t * p + j] = std::sin(angle);
                }
        }
        simd_dft_re.push_back(std::move(dft_re));
        simd_dft_im.push_back(std::move(dft_im));
        cur = m_cur;
    }
}

void
FftPlan::Impl::buildBluestein()
{
    bluestein = true;
    m = 1;
    while (m < 2 * n - 1)
        m <<= 1;
    // Power-of-two inner plans recur across Bluestein lengths (every prime
    // in [2^{k-1}, 2^k) shares the same conv length), so take them from the
    // shared cache.
    inner = acquireFftPlan(m);

    chirp.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
        // k^2 mod 2n keeps the argument small for precision.
        std::size_t k2 = (k * k) % (2 * n);
        Real angle = -kPi * static_cast<Real>(k2) / static_cast<Real>(n);
        chirp[k] = Complex{std::cos(angle), std::sin(angle)};
    }

    std::vector<Complex> kernel(m, Complex{0, 0});
    for (std::size_t k = 0; k < n; ++k) {
        Complex b = std::conj(chirp[k]);
        kernel[k] = b;
        if (k != 0)
            kernel[m - k] = b;
    }
    // The spectrum is baked into the (process-wide cached) plan, so it is
    // computed with the scalar reference kernels unconditionally: cached
    // plan data stays identical whatever kernel mode happens to be active
    // when the plan is first constructed.
    inner->impl_->executeMixed(kernel.data());
    chirp_spectrum = std::move(kernel);
}

void
FftPlan::Impl::combine(Complex *out, std::size_t n_cur, std::size_t p,
                       std::size_t level) const
{
    const std::size_t m_cur = n_cur / p;
    const std::vector<Complex> &tw = twiddles[level];

    if (p == 2) {
        for (std::size_t k = 0; k < m_cur; ++k) {
            Complex a0 = out[k];
            Complex a1 = out[m_cur + k] * tw[k];
            out[k] = a0 + a1;
            out[m_cur + k] = a0 - a1;
        }
        return;
    }

    // Generic radix: gather p strided values, apply the p-point DFT with
    // twiddles folded in, scatter back to the same positions.
    Complex a[kMaxDirectRadix];
    std::size_t cursor[kMaxDirectRadix];
    std::size_t step[kMaxDirectRadix];
    for (std::size_t j = 1; j < p; ++j)
        step[j] = (j * m_cur) % n_cur;

    for (std::size_t k = 0; k < m_cur; ++k) {
        for (std::size_t j = 0; j < p; ++j)
            a[j] = out[j * m_cur + k];
        for (std::size_t j = 1; j < p; ++j)
            cursor[j] = (j * k) % n_cur;
        for (std::size_t t = 0; t < p; ++t) {
            Complex acc = a[0];
            for (std::size_t j = 1; j < p; ++j) {
                acc += a[j] * tw[cursor[j]];
                cursor[j] += step[j];
                if (cursor[j] >= n_cur)
                    cursor[j] -= n_cur;
            }
            out[t * m_cur + k] = acc;
        }
    }
}

void
FftPlan::Impl::recurse(const Complex *in, std::size_t in_stride, Complex *out,
                       std::size_t n_cur, std::size_t level) const
{
    if (n_cur == 1) {
        out[0] = in[0];
        return;
    }
    const std::size_t p = factors[level];
    const std::size_t m_cur = n_cur / p;
    for (std::size_t j = 0; j < p; ++j)
        recurse(in + j * in_stride, in_stride * p, out + j * m_cur, m_cur,
                level + 1);
    combine(out, n_cur, p, level);
}

void
FftPlan::Impl::executeMixed(Complex *data) const
{
    Complex *work = tlsScratch(n);
    recurse(data, 1, work, n, 0);
    std::copy(work, work + n, data);
}

void
FftPlan::Impl::combineSoa(Real *re, Real *im, std::size_t n_cur,
                          std::size_t p, std::size_t level,
                          SoaScratch *scratch) const
{
    const std::size_t m_cur = n_cur / p;
    const Real *tw_re = simd_tw_re[level].data();
    const Real *tw_im = simd_tw_im[level].data();

    if (p == 2) {
        kernels::radix2Pass(re, im, tw_re, tw_im, m_cur);
        return;
    }
    if (p == 4) {
        kernels::radix4Pass(re, im, tw_re, tw_im, m_cur);
        return;
    }

    // Generic radix: stage b_j = a_j * tw_j (b_0 = a_0), then accumulate
    // the p-point DFT rows y_t = sum_j W_p^{tj} * b_j as vectorized
    // constant-complex axpy passes over unit-stride lanes.
    Real *b_re = scratch->stage_re.data();
    Real *b_im = scratch->stage_im.data();
    std::copy(re, re + m_cur, b_re);
    std::copy(im, im + m_cur, b_im);
    for (std::size_t j = 1; j < p; ++j)
        kernels::cmulSoa(b_re + j * m_cur, b_im + j * m_cur, re + j * m_cur,
                         im + j * m_cur, tw_re + (j - 1) * m_cur,
                         tw_im + (j - 1) * m_cur, m_cur);
    const Real *dft_re = simd_dft_re[level].data();
    const Real *dft_im = simd_dft_im[level].data();
    for (std::size_t t = 0; t < p; ++t) {
        Real *y_re = re + t * m_cur;
        Real *y_im = im + t * m_cur;
        std::copy(b_re, b_re + m_cur, y_re); // W_p^{t*0} = 1
        std::copy(b_im, b_im + m_cur, y_im);
        for (std::size_t j = 1; j < p; ++j)
            kernels::caxpySoa(y_re, y_im, b_re + j * m_cur, b_im + j * m_cur,
                              dft_re[t * p + j], dft_im[t * p + j], m_cur);
    }
}

/**
 * SoA recursion over interleaved input: `in` points at complex sample 0
 * of the sub-transform, strided by `in_stride` complex samples. Reading
 * the interleaved data directly at the gather points saves a full
 * deinterleave pass, and the deepest levels (twiddle-free 2- and 4-point
 * transforms) are unrolled to cut leaf-call overhead.
 */
void
FftPlan::Impl::recurseSoa(const Real *in, std::size_t in_stride,
                          Real *out_re, Real *out_im, std::size_t n_cur,
                          std::size_t level, SoaScratch *scratch) const
{
    const std::size_t step = 2 * in_stride; // Reals per complex stride
    if (n_cur == 1) {
        out_re[0] = in[0];
        out_im[0] = in[1];
        return;
    }
    if (n_cur == 2) { // last level is always radix-2, twiddles are 1
        Real a0r = in[0], a0i = in[1];
        Real a1r = in[step], a1i = in[step + 1];
        out_re[0] = a0r + a1r;
        out_im[0] = a0i + a1i;
        out_re[1] = a0r - a1r;
        out_im[1] = a0i - a1i;
        return;
    }
    const std::size_t p = simd_factors[level];
    if (n_cur == 4 && p == 4) { // twiddle-free 4-point leaf (W_4 = -j)
        Real a0r = in[0], a0i = in[1];
        Real a1r = in[step], a1i = in[step + 1];
        Real a2r = in[2 * step], a2i = in[2 * step + 1];
        Real a3r = in[3 * step], a3i = in[3 * step + 1];
        Real s0r = a0r + a2r, s0i = a0i + a2i;
        Real s1r = a0r - a2r, s1i = a0i - a2i;
        Real s2r = a1r + a3r, s2i = a1i + a3i;
        Real s3r = a1r - a3r, s3i = a1i - a3i;
        out_re[0] = s0r + s2r;
        out_im[0] = s0i + s2i;
        out_re[1] = s1r + s3i;
        out_im[1] = s1i - s3r;
        out_re[2] = s0r - s2r;
        out_im[2] = s0i - s2i;
        out_re[3] = s1r - s3i;
        out_im[3] = s1i + s3r;
        return;
    }
    const std::size_t m_cur = n_cur / p;
    for (std::size_t j = 0; j < p; ++j)
        recurseSoa(in + j * step, in_stride * p, out_re + j * m_cur,
                   out_im + j * m_cur, m_cur, level + 1, scratch);
    combineSoa(out_re, out_im, n_cur, p, level, scratch);
}

void
FftPlan::Impl::executeMixedSimd(Complex *data) const
{
    SoaScratch &scratch = tlsSoaScratch(n);
    Real *interleaved = reinterpret_cast<Real *>(data);
    recurseSoa(interleaved, 1, scratch.out_re.data(), scratch.out_im.data(),
               n, 0, &scratch);
    kernels::interleave(scratch.out_re.data(), scratch.out_im.data(),
                        interleaved, n);
}

void
FftPlan::Impl::executeBluestein(Complex *data) const
{
    // Scratch must not collide with the inner plan's own thread-local use;
    // the convolution buffer lives in its own thread-local pool (the inner
    // plan is always mixed-radix, so Bluestein execution never nests) and
    // is grown once per length — steady-state execution allocates nothing.
    const bool simd = simdKernelsCompiled() &&
                      fftKernelMode() == FftKernelMode::Simd;
    static thread_local std::vector<Complex> chirp_buffer;
    if (chirp_buffer.size() < m)
        chirp_buffer.resize(m);
    std::fill_n(chirp_buffer.begin(), m, Complex{0, 0});
    std::vector<Complex> &buffer = chirp_buffer;
    if (simd) {
        kernels::cmulInterleavedOut(
            reinterpret_cast<Real *>(buffer.data()),
            reinterpret_cast<const Real *>(data),
            reinterpret_cast<const Real *>(chirp.data()), n);
    } else {
        for (std::size_t k = 0; k < n; ++k)
            buffer[k] = data[k] * chirp[k];
    }
    inner->forward(buffer.data());
    if (simd) {
        kernels::cmulInterleaved(
            reinterpret_cast<Real *>(buffer.data()),
            reinterpret_cast<const Real *>(chirp_spectrum.data()), m);
    } else {
        for (std::size_t k = 0; k < m; ++k)
            buffer[k] *= chirp_spectrum[k];
    }
    inner->inverse(buffer.data());
    if (simd) {
        kernels::cmulInterleavedOut(
            reinterpret_cast<Real *>(data),
            reinterpret_cast<const Real *>(buffer.data()),
            reinterpret_cast<const Real *>(chirp.data()), n);
    } else {
        for (std::size_t k = 0; k < n; ++k)
            data[k] = buffer[k] * chirp[k];
    }
}

FftPlan::FftPlan(std::size_t n) : impl_(std::make_unique<Impl>())
{
    if (n == 0)
        throw std::invalid_argument("FftPlan: zero length");
    impl_->n = n;
    auto factors = factorize(n);
    bool smooth = factors.empty() ||
                  factors.back() <= kMaxDirectRadix;
    if (smooth)
        impl_->buildMixedRadix();
    else
        impl_->buildBluestein();
}

FftPlan::~FftPlan() = default;
FftPlan::FftPlan(FftPlan &&) noexcept = default;
FftPlan &FftPlan::operator=(FftPlan &&) noexcept = default;

std::size_t
FftPlan::size() const
{
    return impl_->n;
}

void
FftPlan::forward(Complex *data) const
{
    if (impl_->n == 1)
        return;
    if (impl_->bluestein) {
        impl_->executeBluestein(data);
        return;
    }
    if (simdKernelsCompiled() && fftKernelMode() == FftKernelMode::Simd)
        impl_->executeMixedSimd(data);
    else
        impl_->executeMixed(data);
}

void
FftPlan::inverse(Complex *data) const
{
    const std::size_t n = impl_->n;
    if (n == 1)
        return;
    for (std::size_t i = 0; i < n; ++i)
        data[i] = std::conj(data[i]);
    forward(data);
    const Real scale = Real(1) / static_cast<Real>(n);
    for (std::size_t i = 0; i < n; ++i)
        data[i] = std::conj(data[i]) * scale;
}

namespace {

/** Plan cache shared by every Fft2d / Bluestein inner plan in the process. */
struct PlanCache
{
    Mutex mutex;
    std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>> plans
        LIGHTRIDGE_GUARDED_BY(mutex);
};

PlanCache &
planCache()
{
    static PlanCache cache;
    return cache;
}

/**
 * Resolve the pool Fft2d should shard 1-D transforms across, or nullptr
 * for serial execution. Serial whenever the pool has no real workers,
 * the caller is itself a pool worker (sample-parallel batches already
 * saturate the pool; nesting would deadlock the queue), or the grid is
 * too small to amortize a wake/join.
 */
ThreadPool *
fft2dPool(ThreadPool *pool, std::size_t elements)
{
    if (elements < kFft2dParallelMinElements)
        return nullptr;
    if (ThreadPool::insideWorker())
        return nullptr;
    ThreadPool *chosen = pool ? pool : &ThreadPool::global();
    return chosen->workerCount() > 1 ? chosen : nullptr;
}

} // namespace

std::shared_ptr<const FftPlan>
acquireFftPlan(std::size_t n)
{
    PlanCache &cache = planCache();
    {
        MutexLock lock(cache.mutex);
        auto it = cache.plans.find(n);
        if (it != cache.plans.end())
            return it->second;
    }
    // Build outside the lock: plan construction may itself acquire a
    // (smaller) inner plan via the Bluestein path, and large twiddle tables
    // should not serialize unrelated lookups.
    auto plan = std::make_shared<const FftPlan>(n);
    MutexLock lock(cache.mutex);
    auto [it, inserted] = cache.plans.emplace(n, std::move(plan));
    return it->second;
}

std::size_t
fftPlanCacheSize()
{
    PlanCache &cache = planCache();
    MutexLock lock(cache.mutex);
    return cache.plans.size();
}

void
clearFftPlanCache()
{
    PlanCache &cache = planCache();
    MutexLock lock(cache.mutex);
    cache.plans.clear();
}

Fft2d::Fft2d(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_plan_(acquireFftPlan(cols)),
      col_plan_(rows == cols ? row_plan_ : acquireFftPlan(rows))
{}

void
Fft2d::transformRows(Field *field, bool inverse, ThreadPool *pool) const
{
    Complex *data = field->data();
    auto one_row = [&](std::size_t r) {
        if (inverse)
            row_plan_->inverse(data + r * cols_);
        else
            row_plan_->forward(data + r * cols_);
    };
    if (ThreadPool *p = fft2dPool(pool, rows_ * cols_)) {
        p->parallelFor(rows_, one_row);
        return;
    }
    for (std::size_t r = 0; r < rows_; ++r)
        one_row(r);
}

void
Fft2d::transformColumns(Field *field, bool inverse, ThreadPool *pool) const
{
    // Columns are transformed in tiles of adjacent columns: the gather
    // then reads kColumnTile consecutive samples per row (full cache
    // lines) instead of one strided sample per pass, which is what makes
    // the column half of fft2 memory-friendly on large grids. Each tile
    // is staged column-contiguous so the 1-D plans run on unit stride.
    constexpr std::size_t kColumnTile = 8;
    Complex *data = field->data();
    const std::size_t tiles = (cols_ + kColumnTile - 1) / kColumnTile;
    auto one_tile = [&](std::size_t t) {
        // Per-thread staging buffer, reused across a worker's tiles.
        static thread_local std::vector<Complex> stage;
        if (stage.size() < rows_ * kColumnTile)
            stage.resize(rows_ * kColumnTile);
        const std::size_t c0 = t * kColumnTile;
        const std::size_t width = std::min(kColumnTile, cols_ - c0);
        for (std::size_t r = 0; r < rows_; ++r) {
            const Complex *src = data + r * cols_ + c0;
            for (std::size_t j = 0; j < width; ++j)
                stage[j * rows_ + r] = src[j];
        }
        for (std::size_t j = 0; j < width; ++j) {
            if (inverse)
                col_plan_->inverse(stage.data() + j * rows_);
            else
                col_plan_->forward(stage.data() + j * rows_);
        }
        for (std::size_t r = 0; r < rows_; ++r) {
            Complex *dst = data + r * cols_ + c0;
            for (std::size_t j = 0; j < width; ++j)
                dst[j] = stage[j * rows_ + r];
        }
    };
    if (ThreadPool *p = fft2dPool(pool, rows_ * cols_)) {
        p->parallelFor(tiles, one_tile);
        return;
    }
    for (std::size_t t = 0; t < tiles; ++t)
        one_tile(t);
}

void
Fft2d::forward(Field *field, ThreadPool *pool) const
{
    assert(field->rows() == rows_ && field->cols() == cols_);
    transformRows(field, false, pool);
    transformColumns(field, false, pool);
}

void
Fft2d::inverse(Field *field, ThreadPool *pool) const
{
    assert(field->rows() == rows_ && field->cols() == cols_);
    transformRows(field, true, pool);
    transformColumns(field, true, pool);
}

namespace {

Field
circularShift(const Field &in, std::size_t dr, std::size_t dc)
{
    Field out(in.rows(), in.cols());
    for (std::size_t r = 0; r < in.rows(); ++r) {
        std::size_t rr = (r + dr) % in.rows();
        for (std::size_t c = 0; c < in.cols(); ++c) {
            std::size_t cc = (c + dc) % in.cols();
            out(rr, cc) = in(r, c);
        }
    }
    return out;
}

} // namespace

Field
fftshift(const Field &in)
{
    return circularShift(in, in.rows() / 2, in.cols() / 2);
}

Field
ifftshift(const Field &in)
{
    return circularShift(in, in.rows() - in.rows() / 2,
                         in.cols() - in.cols() / 2);
}

std::size_t
nextFastLength(std::size_t n)
{
    if (n == 0)
        return 1;
    for (;; ++n) {
        std::size_t rem = n;
        for (std::size_t p : {2, 3, 5, 7})
            while (rem % p == 0)
                rem /= p;
        if (rem == 1)
            return n;
    }
}

} // namespace lightridge
