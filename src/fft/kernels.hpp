/**
 * @file
 * Kernel-dispatch layer for the FFT engine and element-wise complex math.
 *
 * The propagation hot path (FFT2 -> transfer-function Hadamard -> iFFT2)
 * spends essentially all of its time in a handful of inner loops: radix
 * butterflies, twiddle multiplies, Bluestein chirp products, and the
 * element-wise complex Hadamard multiply. This header exposes those loops
 * as explicitly vectorizable kernels in two flavours:
 *
 *  - Scalar: the original std::complex loops, kept verbatim as the
 *    bit-reference. std::complex multiplies lower to __muldc3 (a libcall
 *    with inf/nan fixups) on GCC/Clang, which blocks vectorization.
 *  - Simd: structure-of-arrays (split real/imag) and interleaved-pair
 *    loops over plain Real arithmetic with contiguous unit strides,
 *    annotated for vectorization. Compiled only when the configure-time
 *    option LIGHTRIDGE_SIMD is on (the default); the build adds
 *    -fopenmp-simd so the `omp simd` annotations are honoured without
 *    pulling in an OpenMP runtime.
 *
 * Dispatch is a process-wide runtime switch so one binary can execute and
 * cross-check both kernel sets (the property suites do exactly that).
 * Reassociated reductions mean Simd results are not bitwise equal to
 * Scalar results; the contract, enforced by tests, is agreement within
 * kFftKernelTolerance * n for unit-magnitude inputs of length n. Within
 * one mode, results are deterministic and independent of thread count.
 */
#pragma once

#include <cstddef>

#include "utils/types.hpp"

namespace lightridge {

/** Which inner-loop kernel set the FFT/Hadamard engine executes. */
enum class FftKernelMode
{
    Scalar, ///< reference std::complex loops (pre-dispatch behaviour)
    Simd,   ///< vectorizable SoA/interleaved kernels (needs LIGHTRIDGE_SIMD)
};

/** True when the SIMD kernel set was compiled in (LIGHTRIDGE_SIMD=ON). */
bool simdKernelsCompiled();

/** Currently active kernel mode (process-wide). */
FftKernelMode fftKernelMode();

/**
 * Select the kernel mode. Requesting Simd in a build without the SIMD
 * kernels falls back to Scalar; the return value is the mode actually in
 * effect.
 */
FftKernelMode setFftKernelMode(FftKernelMode mode);

/**
 * Scalar-vs-SIMD agreement bound: for inputs with |x_i| <= 1, transforms
 * of length n (or n*n fields) from the two kernel sets agree within
 * kFftKernelTolerance * n in max absolute difference. Pinned by the
 * property and propagator suites; loosening it is an API change.
 */
inline constexpr Real kFftKernelTolerance = 1e-11;

/** RAII guard: set a kernel mode for one scope, restore on exit. */
class FftKernelModeGuard
{
  public:
    explicit FftKernelModeGuard(FftKernelMode mode)
        : previous_(fftKernelMode())
    {
        setFftKernelMode(mode);
    }
    ~FftKernelModeGuard() { setFftKernelMode(previous_); }

    FftKernelModeGuard(const FftKernelModeGuard &) = delete;
    FftKernelModeGuard &operator=(const FftKernelModeGuard &) = delete;

  private:
    FftKernelMode previous_;
};

/**
 * The vectorizable kernels themselves. All pointers must be non-aliasing
 * unless a parameter is documented as in/out; SoA variants take split
 * real/imag arrays, interleaved variants take (re, im) pairs as laid out
 * by std::complex<Real> arrays.
 */
namespace kernels {

/**
 * Radix-2 butterfly pass over one combine block.
 * data layout: x0 = (re[k], im[k]), x1 = (re[m+k], im[m+k]), k in [0, m).
 * Computes x0' = x0 + tw[k]*x1, x1' = x0 - tw[k]*x1 in place.
 */
void radix2Pass(Real *re, Real *im, const Real *tw_re, const Real *tw_im,
                std::size_t m);

/**
 * Radix-4 butterfly pass over one combine block of length 4m.
 * Twiddle arrays hold three unit-stride sub-tables of length m each:
 * tw_re[j*m + k] = Re(W_{4m}^{(j+1)k}) for j in {0,1,2}.
 */
void radix4Pass(Real *re, Real *im, const Real *tw_re, const Real *tw_im,
                std::size_t m);

/** out = a * b, element-wise complex multiply over split arrays. */
void cmulSoa(Real *out_re, Real *out_im, const Real *a_re, const Real *a_im,
             const Real *b_re, const Real *b_im, std::size_t n);

/** y += c * x for a complex constant c over split arrays. */
void caxpySoa(Real *y_re, Real *y_im, const Real *x_re, const Real *x_im,
              Real c_re, Real c_im, std::size_t n);

/**
 * a *= b element-wise over interleaved complex arrays of n samples
 * (2n Reals). This is the transfer-function Hadamard multiply of the
 * propagator and the Bluestein chirp product.
 */
void cmulInterleaved(Real *a, const Real *b, std::size_t n);

/** a *= conj(b) element-wise over interleaved complex arrays. */
void cmulConjInterleaved(Real *a, const Real *b, std::size_t n);

/**
 * dst = a * b element-wise over interleaved complex arrays (out of
 * place; dst must not alias a or b). Used where the product lands in a
 * different buffer anyway — the Bluestein chirp products — to avoid a
 * copy-then-multiply double pass.
 */
void cmulInterleavedOut(Real *dst, const Real *a, const Real *b,
                        std::size_t n);

/** Merge re[]/im[] back into n interleaved complex samples. */
void interleave(const Real *re, const Real *im, Real *dst, std::size_t n);

/**
 * dst = +/- src over n interleaved complex samples with the sign
 * alternating per sample, starting negative when negate_first is set.
 * This is one row of the Fraunhofer centered-DFT sign checkerboard
 * (-1)^(r+c); negation is exact, so the kernel is bitwise-identical to
 * the scalar complex-times-sign loop. dst may alias src.
 */
void copySignAlternating(Real *dst, const Real *src, std::size_t n,
                         bool negate_first);

/**
 * a *= +/- scale over n interleaved complex samples with the sign
 * alternating per sample (the Fraunhofer adjoint's fused sign and N^2
 * rescale). Bitwise-identical to the scalar loop for the same reason.
 */
void scaleSignAlternating(Real *a, Real scale, std::size_t n,
                          bool negate_first);

} // namespace kernels

} // namespace lightridge
