/**
 * @file
 * Planned FFT engine: mixed-radix Cooley-Tukey with Bluestein fallback.
 *
 * This is the performance-critical kernel of LightRidge (paper Section 5.3,
 * Figure 8): scalar-diffraction emulation reduces to FFT2 -> complex
 * Hadamard product -> iFFT2. No external FFT library is available in this
 * environment, so the engine is built from scratch:
 *
 *  - Arbitrary transform lengths. Smooth lengths (prime factors <= 31) run
 *    a recursive mixed-radix Cooley-Tukey with precomputed per-level
 *    twiddle tables and in-place butterflies; lengths with a larger prime
 *    factor run Bluestein's chirp-z algorithm over a power-of-two plan.
 *  - Plans are immutable after construction and safe to share across
 *    threads; per-call scratch lives in thread-local storage.
 *
 * The "LightPipes-like" baseline in src/baseline deliberately omits the
 * planning/caching/fusion done here, which is exactly the delta the
 * paper's runtime evaluation measures.
 */
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "tensor/field.hpp"
#include "utils/types.hpp"

namespace lightridge {

/**
 * Immutable 1-D FFT plan for a fixed transform length.
 *
 * Construction factorizes the length, precomputes all twiddle tables (and,
 * for Bluestein lengths, the chirp spectrum). Execution is allocation-free
 * in steady state.
 */
class FftPlan
{
  public:
    /** Build a plan for length n (n >= 1). */
    explicit FftPlan(std::size_t n);
    ~FftPlan();

    FftPlan(const FftPlan &) = delete;
    FftPlan &operator=(const FftPlan &) = delete;
    FftPlan(FftPlan &&) noexcept;
    FftPlan &operator=(FftPlan &&) noexcept;

    /** Transform length. */
    std::size_t size() const;

    /** In-place forward DFT (engineering sign convention e^{-j2pi kn/N}). */
    void forward(Complex *data) const;

    /** In-place inverse DFT, scaled by 1/N. */
    void inverse(Complex *data) const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * 2-D FFT over a Field: rows then columns, both via shared 1-D plans.
 * Thread-safe; scratch space is thread-local.
 */
class Fft2d
{
  public:
    /** Plan for fields with the given shape. */
    Fft2d(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** In-place forward 2-D DFT. Field shape must match the plan. */
    void forward(Field *field) const;

    /** In-place inverse 2-D DFT (scaled by 1/(rows*cols)). */
    void inverse(Field *field) const;

  private:
    void transformColumns(Field *field, bool inverse) const;

    std::size_t rows_;
    std::size_t cols_;
    std::shared_ptr<const FftPlan> row_plan_; // length == cols
    std::shared_ptr<const FftPlan> col_plan_; // length == rows
};

/**
 * Process-wide FFT plan cache.
 *
 * Plan construction (factorization + twiddle tables, plus the chirp
 * spectrum for Bluestein lengths) is the expensive part of the engine;
 * every propagator hop, bench harness, and training loop that transforms
 * the same length should share one immutable plan. acquireFftPlan()
 * returns the cached plan for a length, building it on first use. Plans
 * are immutable and thread-safe to execute concurrently, so sharing is
 * free; the cache itself is mutex-protected.
 */
std::shared_ptr<const FftPlan> acquireFftPlan(std::size_t n);

/** Number of distinct plan lengths currently cached. */
std::size_t fftPlanCacheSize();

/** Drop all cached plans (live shared_ptr holders keep theirs alive). */
void clearFftPlanCache();

/**
 * Reference O(n^2) DFT used by tests to validate the fast engine and by
 * documentation examples. sign=-1 forward, sign=+1 inverse (unscaled).
 */
std::vector<Complex> naiveDft(const std::vector<Complex> &input, int sign);

/** Centered spectrum reordering (swap half-spaces); returns a new field. */
Field fftshift(const Field &in);

/** Inverse of fftshift (differs from it for odd sizes). */
Field ifftshift(const Field &in);

/** Smallest length >= n whose prime factors are all <= 7. */
std::size_t nextFastLength(std::size_t n);

} // namespace lightridge
