/**
 * @file
 * Planned FFT engine: mixed-radix Cooley-Tukey with Bluestein fallback.
 *
 * This is the performance-critical kernel of LightRidge (paper Section 5.3,
 * Figure 8): scalar-diffraction emulation reduces to FFT2 -> complex
 * Hadamard product -> iFFT2. No external FFT library is available in this
 * environment, so the engine is built from scratch:
 *
 *  - Arbitrary transform lengths. Smooth lengths (prime factors <= 31) run
 *    a recursive mixed-radix Cooley-Tukey with precomputed per-level
 *    twiddle tables and in-place butterflies; lengths with a larger prime
 *    factor run Bluestein's chirp-z algorithm over a power-of-two plan.
 *  - Plans are immutable after construction and safe to share across
 *    threads; per-call scratch lives in thread-local storage.
 *  - Inner loops run through the kernel-dispatch layer (fft/kernels.hpp):
 *    the default Simd mode executes split real/imag structure-of-arrays
 *    butterflies (radix-2/4 specialized, generic radix through SoA
 *    twiddle products) and vectorized chirp/Hadamard products; Scalar
 *    mode keeps the original std::complex loops as the bit-reference.
 *  - Fft2d shards the independent 1-D row and column transforms of one
 *    large grid across the process thread pool (row-parallel FFT2). The
 *    split is deterministic: results are bitwise-identical to the serial
 *    path regardless of worker count, and execution degrades gracefully
 *    to serial on single-thread hosts, inside pool workers (no nested
 *    parallelism), and for small grids.
 *
 * The "LightPipes-like" baseline in src/baseline deliberately omits the
 * planning/caching/fusion done here, which is exactly the delta the
 * paper's runtime evaluation measures.
 */
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "fft/kernels.hpp"
#include "tensor/field.hpp"
#include "utils/types.hpp"

namespace lightridge {

class ThreadPool;

/**
 * Immutable 1-D FFT plan for a fixed transform length.
 *
 * Construction factorizes the length, precomputes all twiddle tables (and,
 * for Bluestein lengths, the chirp spectrum). Execution is allocation-free
 * in steady state.
 */
class FftPlan
{
  public:
    /** Build a plan for length n (n >= 1). */
    explicit FftPlan(std::size_t n);
    ~FftPlan();

    FftPlan(const FftPlan &) = delete;
    FftPlan &operator=(const FftPlan &) = delete;
    FftPlan(FftPlan &&) noexcept;
    FftPlan &operator=(FftPlan &&) noexcept;

    /** Transform length. */
    std::size_t size() const;

    /** In-place forward DFT (engineering sign convention e^{-j2pi kn/N}). */
    void forward(Complex *data) const;

    /** In-place inverse DFT, scaled by 1/N. */
    void inverse(Complex *data) const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * 2-D FFT over a Field: rows then columns, both via shared 1-D plans.
 * Thread-safe; scratch space is thread-local.
 *
 * Large grids are row/column-parallel: the independent 1-D transforms are
 * sharded across a thread pool. Passing pool = nullptr uses the global
 * pool. The parallel split never changes numerics (each 1-D transform is
 * computed identically on whichever thread runs it), and the engine runs
 * serially when the pool has <= 1 worker, when already executing inside a
 * pool worker (the batched sample-parallel path), or when the grid is
 * below the parallel threshold.
 */
class Fft2d
{
  public:
    /** Plan for fields with the given shape. */
    Fft2d(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** In-place forward 2-D DFT. Field shape must match the plan. */
    void forward(Field *field, ThreadPool *pool = nullptr) const;

    /** In-place inverse 2-D DFT (scaled by 1/(rows*cols)). */
    void inverse(Field *field, ThreadPool *pool = nullptr) const;

  private:
    void transformRows(Field *field, bool inverse, ThreadPool *pool) const;
    void transformColumns(Field *field, bool inverse, ThreadPool *pool) const;

    std::size_t rows_;
    std::size_t cols_;
    std::shared_ptr<const FftPlan> row_plan_; // length == cols
    std::shared_ptr<const FftPlan> col_plan_; // length == rows
};

/**
 * Grid-element threshold below which Fft2d stays serial: sharding 1-D
 * transforms only pays off once a transform batch outweighs the pool's
 * wake/join cost (empirically around a 128x128 grid).
 */
inline constexpr std::size_t kFft2dParallelMinElements = 128 * 128;

/**
 * Process-wide FFT plan cache.
 *
 * Plan construction (factorization + twiddle tables, plus the chirp
 * spectrum for Bluestein lengths) is the expensive part of the engine;
 * every propagator hop, bench harness, and training loop that transforms
 * the same length should share one immutable plan. acquireFftPlan()
 * returns the cached plan for a length, building it on first use. Plans
 * are immutable and thread-safe to execute concurrently, so sharing is
 * free; the cache itself is mutex-protected.
 */
std::shared_ptr<const FftPlan> acquireFftPlan(std::size_t n);

/** Number of distinct plan lengths currently cached. */
std::size_t fftPlanCacheSize();

/** Drop all cached plans (live shared_ptr holders keep theirs alive). */
void clearFftPlanCache();

/** Centered spectrum reordering (swap half-spaces); returns a new field. */
Field fftshift(const Field &in);

/** Inverse of fftshift (differs from it for odd sizes). */
Field ifftshift(const Field &in);

/** Smallest length >= n whose prime factors are all <= 7. */
std::size_t nextFastLength(std::size_t n);

} // namespace lightridge
