#include "fft/kernels.hpp"

#include <atomic>

/*
 * LR_SIMD_LOOP marks a loop whose iterations are independent and whose
 * memory accesses are unit-stride, so the compiler may vectorize with
 * reassociation. The annotation requires -fopenmp-simd (added by the
 * build when LIGHTRIDGE_SIMD is on); plain auto-vectorization still
 * applies when the pragma is absent.
 */
#if defined(LIGHTRIDGE_SIMD)
#define LR_SIMD_LOOP _Pragma("omp simd")
#else
#define LR_SIMD_LOOP
#endif

namespace lightridge {

namespace {

std::atomic<FftKernelMode> &
kernelModeFlag()
{
    static std::atomic<FftKernelMode> mode{
        simdKernelsCompiled() ? FftKernelMode::Simd : FftKernelMode::Scalar};
    return mode;
}

} // namespace

bool
simdKernelsCompiled()
{
#if defined(LIGHTRIDGE_SIMD)
    return true;
#else
    return false;
#endif
}

FftKernelMode
fftKernelMode()
{
    return kernelModeFlag().load(std::memory_order_relaxed);
}

FftKernelMode
setFftKernelMode(FftKernelMode mode)
{
    if (mode == FftKernelMode::Simd && !simdKernelsCompiled())
        mode = FftKernelMode::Scalar;
    kernelModeFlag().store(mode, std::memory_order_relaxed);
    return mode;
}

namespace kernels {

void
radix2Pass(Real *re, Real *im, const Real *tw_re, const Real *tw_im,
           std::size_t m)
{
    LR_SIMD_LOOP
    for (std::size_t k = 0; k < m; ++k) {
        Real br = re[m + k], bi = im[m + k];
        Real tr = br * tw_re[k] - bi * tw_im[k];
        Real ti = br * tw_im[k] + bi * tw_re[k];
        Real ar = re[k], ai = im[k];
        re[k] = ar + tr;
        im[k] = ai + ti;
        re[m + k] = ar - tr;
        im[m + k] = ai - ti;
    }
}

void
radix4Pass(Real *re, Real *im, const Real *tw_re, const Real *tw_im,
           std::size_t m)
{
    const Real *t1r = tw_re, *t1i = tw_im;
    const Real *t2r = tw_re + m, *t2i = tw_im + m;
    const Real *t3r = tw_re + 2 * m, *t3i = tw_im + 2 * m;
    LR_SIMD_LOOP
    for (std::size_t k = 0; k < m; ++k) {
        Real a0r = re[k], a0i = im[k];
        Real x1r = re[m + k], x1i = im[m + k];
        Real x2r = re[2 * m + k], x2i = im[2 * m + k];
        Real x3r = re[3 * m + k], x3i = im[3 * m + k];
        Real a1r = x1r * t1r[k] - x1i * t1i[k];
        Real a1i = x1r * t1i[k] + x1i * t1r[k];
        Real a2r = x2r * t2r[k] - x2i * t2i[k];
        Real a2i = x2r * t2i[k] + x2i * t2r[k];
        Real a3r = x3r * t3r[k] - x3i * t3i[k];
        Real a3i = x3r * t3i[k] + x3i * t3r[k];
        // 4-point DFT with W_4 = -j (forward sign convention).
        Real s0r = a0r + a2r, s0i = a0i + a2i;
        Real s1r = a0r - a2r, s1i = a0i - a2i;
        Real s2r = a1r + a3r, s2i = a1i + a3i;
        Real s3r = a1r - a3r, s3i = a1i - a3i;
        re[k] = s0r + s2r;
        im[k] = s0i + s2i;
        re[m + k] = s1r + s3i;
        im[m + k] = s1i - s3r;
        re[2 * m + k] = s0r - s2r;
        im[2 * m + k] = s0i - s2i;
        re[3 * m + k] = s1r - s3i;
        im[3 * m + k] = s1i + s3r;
    }
}

void
cmulSoa(Real *out_re, Real *out_im, const Real *a_re, const Real *a_im,
        const Real *b_re, const Real *b_im, std::size_t n)
{
    LR_SIMD_LOOP
    for (std::size_t i = 0; i < n; ++i) {
        Real ar = a_re[i], ai = a_im[i];
        Real br = b_re[i], bi = b_im[i];
        out_re[i] = ar * br - ai * bi;
        out_im[i] = ar * bi + ai * br;
    }
}

void
caxpySoa(Real *y_re, Real *y_im, const Real *x_re, const Real *x_im,
         Real c_re, Real c_im, std::size_t n)
{
    LR_SIMD_LOOP
    for (std::size_t i = 0; i < n; ++i) {
        Real xr = x_re[i], xi = x_im[i];
        y_re[i] += xr * c_re - xi * c_im;
        y_im[i] += xr * c_im + xi * c_re;
    }
}

void
cmulInterleaved(Real *a, const Real *b, std::size_t n)
{
    LR_SIMD_LOOP
    for (std::size_t i = 0; i < n; ++i) {
        Real ar = a[2 * i], ai = a[2 * i + 1];
        Real br = b[2 * i], bi = b[2 * i + 1];
        a[2 * i] = ar * br - ai * bi;
        a[2 * i + 1] = ar * bi + ai * br;
    }
}

void
cmulConjInterleaved(Real *a, const Real *b, std::size_t n)
{
    LR_SIMD_LOOP
    for (std::size_t i = 0; i < n; ++i) {
        Real ar = a[2 * i], ai = a[2 * i + 1];
        Real br = b[2 * i], bi = b[2 * i + 1];
        a[2 * i] = ar * br + ai * bi;
        a[2 * i + 1] = ai * br - ar * bi;
    }
}

void
cmulInterleavedOut(Real *dst, const Real *a, const Real *b, std::size_t n)
{
    LR_SIMD_LOOP
    for (std::size_t i = 0; i < n; ++i) {
        Real ar = a[2 * i], ai = a[2 * i + 1];
        Real br = b[2 * i], bi = b[2 * i + 1];
        dst[2 * i] = ar * br - ai * bi;
        dst[2 * i + 1] = ar * bi + ai * br;
    }
}

void
interleave(const Real *re, const Real *im, Real *dst, std::size_t n)
{
    LR_SIMD_LOOP
    for (std::size_t i = 0; i < n; ++i) {
        dst[2 * i] = re[i];
        dst[2 * i + 1] = im[i];
    }
}

void
copySignAlternating(Real *dst, const Real *src, std::size_t n,
                    bool negate_first)
{
    const Real even = negate_first ? Real(-1) : Real(1);
    const Real odd = -even;
    LR_SIMD_LOOP
    for (std::size_t i = 0; i < n; ++i) {
        const Real s = (i % 2 == 0) ? even : odd;
        dst[2 * i] = s * src[2 * i];
        dst[2 * i + 1] = s * src[2 * i + 1];
    }
}

void
scaleSignAlternating(Real *a, Real scale, std::size_t n, bool negate_first)
{
    const Real even = negate_first ? -scale : scale;
    const Real odd = -even;
    LR_SIMD_LOOP
    for (std::size_t i = 0; i < n; ++i) {
        const Real s = (i % 2 == 0) ? even : odd;
        a[2 * i] *= s;
        a[2 * i + 1] *= s;
    }
}

} // namespace kernels
} // namespace lightridge
