/**
 * @file
 * Sequential real-valued network + trainer for the Table 4 baselines.
 */
#pragma once

#include <memory>
#include <vector>

#include "core/dataset.hpp"
#include "core/loss.hpp"
#include "core/optimizer.hpp"
#include "nn/nn_layers.hpp"

namespace lightridge {
namespace nn {

/** Sequential container over NnLayers. */
class Network
{
  public:
    Network() = default;

    void
    add(std::unique_ptr<NnLayer> layer)
    {
        layers_.push_back(std::move(layer));
    }

    std::size_t depth() const { return layers_.size(); }

    std::vector<Real> forward(const std::vector<Real> &in);
    void backward(const std::vector<Real> &dlogits);
    std::vector<ParamView> params();
    void zeroGrad();

    int predict(const std::vector<Real> &in);

    /** Total trainable parameter count. */
    std::size_t parameterCount();

  private:
    std::vector<std::unique_ptr<NnLayer>> layers_;
};

/**
 * The paper's MLP baseline: input -> 128 -> num_classes (two linear
 * layers, hidden size 128, flattened input).
 */
Network makePaperMlp(std::size_t input_pixels, std::size_t num_classes,
                     Rng *rng);

/**
 * The paper's CNN baseline: Conv(5x5, 32, s2, p2) -> MaxPool(3, s2) ->
 * Conv(5x5, 64, s2, p2) -> MaxPool(3, s2) -> Dense(128) -> Dense(classes).
 */
Network makePaperCnn(std::size_t image_side, std::size_t num_classes,
                     Rng *rng);

/** Training configuration for the digital baselines. */
struct NnTrainConfig
{
    int epochs = 3;
    std::size_t batch = 32;
    Real lr = 1e-3;
    uint64_t seed = 11;
};

/** Minibatch Adam trainer over a ClassDataset (images flattened). */
class NnTrainer
{
  public:
    NnTrainer(Network &net, NnTrainConfig config);

    Real trainEpoch(const ClassDataset &train);

    /** Top-1 accuracy. */
    Real evaluate(const ClassDataset &test);

    /** Measured single-sample inference throughput [frames/s]. */
    Real measureFps(const ClassDataset &data, std::size_t samples = 64);

  private:
    Network &net_;
    NnTrainConfig config_;
    Adam optimizer_;
    Rng rng_;
};

} // namespace nn
} // namespace lightridge
