/**
 * @file
 * Real-valued neural-network layers for the paper's digital baselines.
 *
 * Table 4 compares DONNs against a 2-layer MLP and a small CNN (two
 * Conv2D + MaxPool stages followed by linear layers). These layers
 * implement exactly those architectures with standard backprop, reusing
 * the ParamView/optimizer machinery of the DONN core so both model
 * families train through the same Adam implementation.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/layer.hpp" // ParamView
#include "utils/rng.hpp"
#include "utils/types.hpp"

namespace lightridge {
namespace nn {

/** Shape of an activation: channels x height x width (dense: c=len). */
struct Shape
{
    std::size_t c = 1, h = 1, w = 1;
    std::size_t size() const { return c * h * w; }
};

/** Base class for real-valued layers (flat activation buffers). */
class NnLayer
{
  public:
    virtual ~NnLayer() = default;
    virtual std::string kind() const = 0;

    /** Output shape for this layer's configured input. */
    virtual Shape outputShape() const = 0;

    virtual std::vector<Real> forward(const std::vector<Real> &in) = 0;
    virtual std::vector<Real> backward(const std::vector<Real> &grad) = 0;
    virtual std::vector<ParamView> params() { return {}; }
};

/** Fully connected layer with bias. */
class Dense : public NnLayer
{
  public:
    Dense(std::size_t in, std::size_t out, Rng *rng);
    std::string kind() const override { return "dense"; }
    Shape outputShape() const override { return Shape{out_, 1, 1}; }
    std::vector<Real> forward(const std::vector<Real> &in) override;
    std::vector<Real> backward(const std::vector<Real> &grad) override;
    std::vector<ParamView> params() override;

  private:
    std::size_t in_, out_;
    std::vector<Real> w_, b_, dw_, db_, cached_in_;
};

/** 2-D convolution (square kernel, configurable stride/padding). */
class Conv2d : public NnLayer
{
  public:
    Conv2d(Shape in, std::size_t out_ch, std::size_t kernel,
           std::size_t stride, std::size_t pad, Rng *rng);
    std::string kind() const override { return "conv2d"; }
    Shape outputShape() const override { return out_shape_; }
    std::vector<Real> forward(const std::vector<Real> &in) override;
    std::vector<Real> backward(const std::vector<Real> &grad) override;
    std::vector<ParamView> params() override;

  private:
    Shape in_shape_, out_shape_;
    std::size_t kernel_, stride_, pad_;
    std::vector<Real> w_, b_, dw_, db_, cached_in_;
};

/** Max pooling (square window). */
class MaxPool2d : public NnLayer
{
  public:
    MaxPool2d(Shape in, std::size_t kernel, std::size_t stride);
    std::string kind() const override { return "maxpool"; }
    Shape outputShape() const override { return out_shape_; }
    std::vector<Real> forward(const std::vector<Real> &in) override;
    std::vector<Real> backward(const std::vector<Real> &grad) override;

  private:
    Shape in_shape_, out_shape_;
    std::size_t kernel_, stride_;
    std::vector<std::size_t> argmax_;
};

/** Elementwise rectified linear unit. */
class Relu : public NnLayer
{
  public:
    explicit Relu(Shape in) : shape_(in) {}
    std::string kind() const override { return "relu"; }
    Shape outputShape() const override { return shape_; }
    std::vector<Real> forward(const std::vector<Real> &in) override;
    std::vector<Real> backward(const std::vector<Real> &grad) override;

  private:
    Shape shape_;
    std::vector<Real> cached_in_;
};

} // namespace nn
} // namespace lightridge
