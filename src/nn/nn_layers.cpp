#include "nn/nn_layers.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lightridge {
namespace nn {

Dense::Dense(std::size_t in, std::size_t out, Rng *rng)
    : in_(in), out_(out), w_(in * out), b_(out, 0.0), dw_(in * out, 0.0),
      db_(out, 0.0)
{
    // He-style initialization.
    Real scale = std::sqrt(2.0 / static_cast<Real>(in));
    for (Real &v : w_)
        v = rng->normal(0, scale);
}

std::vector<Real>
Dense::forward(const std::vector<Real> &in)
{
    if (in.size() != in_)
        throw std::invalid_argument("Dense: input size mismatch");
    cached_in_ = in;
    std::vector<Real> out(out_);
    for (std::size_t o = 0; o < out_; ++o) {
        Real acc = b_[o];
        const Real *row = w_.data() + o * in_;
        for (std::size_t i = 0; i < in_; ++i)
            acc += row[i] * in[i];
        out[o] = acc;
    }
    return out;
}

std::vector<Real>
Dense::backward(const std::vector<Real> &grad)
{
    std::vector<Real> grad_in(in_, 0.0);
    for (std::size_t o = 0; o < out_; ++o) {
        db_[o] += grad[o];
        Real *drow = dw_.data() + o * in_;
        const Real *row = w_.data() + o * in_;
        for (std::size_t i = 0; i < in_; ++i) {
            drow[i] += grad[o] * cached_in_[i];
            grad_in[i] += grad[o] * row[i];
        }
    }
    return grad_in;
}

std::vector<ParamView>
Dense::params()
{
    return {ParamView{"w", &w_, &dw_}, ParamView{"b", &b_, &db_}};
}

Conv2d::Conv2d(Shape in, std::size_t out_ch, std::size_t kernel,
               std::size_t stride, std::size_t pad, Rng *rng)
    : in_shape_(in), kernel_(kernel), stride_(stride), pad_(pad)
{
    out_shape_.c = out_ch;
    out_shape_.h = (in.h + 2 * pad - kernel) / stride + 1;
    out_shape_.w = (in.w + 2 * pad - kernel) / stride + 1;
    w_.resize(out_ch * in.c * kernel * kernel);
    b_.assign(out_ch, 0.0);
    dw_.assign(w_.size(), 0.0);
    db_.assign(out_ch, 0.0);
    Real scale = std::sqrt(2.0 / static_cast<Real>(in.c * kernel * kernel));
    for (Real &v : w_)
        v = rng->normal(0, scale);
}

std::vector<Real>
Conv2d::forward(const std::vector<Real> &in)
{
    if (in.size() != in_shape_.size())
        throw std::invalid_argument("Conv2d: input size mismatch");
    cached_in_ = in;
    std::vector<Real> out(out_shape_.size(), 0.0);
    const std::size_t ih = in_shape_.h, iw = in_shape_.w;
    for (std::size_t oc = 0; oc < out_shape_.c; ++oc) {
        for (std::size_t oy = 0; oy < out_shape_.h; ++oy) {
            for (std::size_t ox = 0; ox < out_shape_.w; ++ox) {
                Real acc = b_[oc];
                for (std::size_t ic = 0; ic < in_shape_.c; ++ic) {
                    const Real *wk = w_.data() +
                        ((oc * in_shape_.c + ic) * kernel_) * kernel_;
                    for (std::size_t ky = 0; ky < kernel_; ++ky) {
                        long iy = static_cast<long>(oy * stride_ + ky) -
                                  static_cast<long>(pad_);
                        if (iy < 0 || iy >= static_cast<long>(ih))
                            continue;
                        for (std::size_t kx = 0; kx < kernel_; ++kx) {
                            long ix = static_cast<long>(ox * stride_ + kx) -
                                      static_cast<long>(pad_);
                            if (ix < 0 || ix >= static_cast<long>(iw))
                                continue;
                            acc += wk[ky * kernel_ + kx] *
                                   in[(ic * ih + iy) * iw + ix];
                        }
                    }
                }
                out[(oc * out_shape_.h + oy) * out_shape_.w + ox] = acc;
            }
        }
    }
    return out;
}

std::vector<Real>
Conv2d::backward(const std::vector<Real> &grad)
{
    std::vector<Real> grad_in(in_shape_.size(), 0.0);
    const std::size_t ih = in_shape_.h, iw = in_shape_.w;
    for (std::size_t oc = 0; oc < out_shape_.c; ++oc) {
        for (std::size_t oy = 0; oy < out_shape_.h; ++oy) {
            for (std::size_t ox = 0; ox < out_shape_.w; ++ox) {
                Real g = grad[(oc * out_shape_.h + oy) * out_shape_.w + ox];
                db_[oc] += g;
                for (std::size_t ic = 0; ic < in_shape_.c; ++ic) {
                    Real *dwk = dw_.data() +
                        ((oc * in_shape_.c + ic) * kernel_) * kernel_;
                    const Real *wk = w_.data() +
                        ((oc * in_shape_.c + ic) * kernel_) * kernel_;
                    for (std::size_t ky = 0; ky < kernel_; ++ky) {
                        long iy = static_cast<long>(oy * stride_ + ky) -
                                  static_cast<long>(pad_);
                        if (iy < 0 || iy >= static_cast<long>(ih))
                            continue;
                        for (std::size_t kx = 0; kx < kernel_; ++kx) {
                            long ix = static_cast<long>(ox * stride_ + kx) -
                                      static_cast<long>(pad_);
                            if (ix < 0 || ix >= static_cast<long>(iw))
                                continue;
                            std::size_t ii = (ic * ih + iy) * iw + ix;
                            dwk[ky * kernel_ + kx] += g * cached_in_[ii];
                            grad_in[ii] += g * wk[ky * kernel_ + kx];
                        }
                    }
                }
            }
        }
    }
    return grad_in;
}

std::vector<ParamView>
Conv2d::params()
{
    return {ParamView{"w", &w_, &dw_}, ParamView{"b", &b_, &db_}};
}

MaxPool2d::MaxPool2d(Shape in, std::size_t kernel, std::size_t stride)
    : in_shape_(in), kernel_(kernel), stride_(stride)
{
    out_shape_.c = in.c;
    out_shape_.h = (in.h - kernel) / stride + 1;
    out_shape_.w = (in.w - kernel) / stride + 1;
}

std::vector<Real>
MaxPool2d::forward(const std::vector<Real> &in)
{
    if (in.size() != in_shape_.size())
        throw std::invalid_argument("MaxPool2d: input size mismatch");
    std::vector<Real> out(out_shape_.size());
    argmax_.assign(out_shape_.size(), 0);
    for (std::size_t c = 0; c < out_shape_.c; ++c)
        for (std::size_t oy = 0; oy < out_shape_.h; ++oy)
            for (std::size_t ox = 0; ox < out_shape_.w; ++ox) {
                Real best = -1e300;
                std::size_t best_idx = 0;
                for (std::size_t ky = 0; ky < kernel_; ++ky)
                    for (std::size_t kx = 0; kx < kernel_; ++kx) {
                        std::size_t iy = oy * stride_ + ky;
                        std::size_t ix = ox * stride_ + kx;
                        std::size_t ii =
                            (c * in_shape_.h + iy) * in_shape_.w + ix;
                        if (in[ii] > best) {
                            best = in[ii];
                            best_idx = ii;
                        }
                    }
                std::size_t oi = (c * out_shape_.h + oy) * out_shape_.w + ox;
                out[oi] = best;
                argmax_[oi] = best_idx;
            }
    return out;
}

std::vector<Real>
MaxPool2d::backward(const std::vector<Real> &grad)
{
    std::vector<Real> grad_in(in_shape_.size(), 0.0);
    for (std::size_t oi = 0; oi < grad.size(); ++oi)
        grad_in[argmax_[oi]] += grad[oi];
    return grad_in;
}

std::vector<Real>
Relu::forward(const std::vector<Real> &in)
{
    cached_in_ = in;
    std::vector<Real> out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = in[i] > 0 ? in[i] : 0;
    return out;
}

std::vector<Real>
Relu::backward(const std::vector<Real> &grad)
{
    std::vector<Real> grad_in(grad.size());
    for (std::size_t i = 0; i < grad.size(); ++i)
        grad_in[i] = cached_in_[i] > 0 ? grad[i] : 0;
    return grad_in;
}

} // namespace nn
} // namespace lightridge
