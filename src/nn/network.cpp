#include "nn/network.hpp"

#include <algorithm>
#include <numeric>

#include "utils/timer.hpp"

namespace lightridge {
namespace nn {

std::vector<Real>
Network::forward(const std::vector<Real> &in)
{
    std::vector<Real> x = in;
    for (auto &layer : layers_)
        x = layer->forward(x);
    return x;
}

void
Network::backward(const std::vector<Real> &dlogits)
{
    std::vector<Real> g = dlogits;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
}

std::vector<ParamView>
Network::params()
{
    std::vector<ParamView> all;
    for (auto &layer : layers_)
        for (ParamView p : layer->params())
            all.push_back(p);
    return all;
}

void
Network::zeroGrad()
{
    for (ParamView p : params())
        if (p.grad)
            std::fill(p.grad->begin(), p.grad->end(), Real(0));
}

int
Network::predict(const std::vector<Real> &in)
{
    std::vector<Real> logits = forward(in);
    return static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
}

std::size_t
Network::parameterCount()
{
    std::size_t total = 0;
    for (ParamView p : params())
        total += p.value->size();
    return total;
}

Network
makePaperMlp(std::size_t input_pixels, std::size_t num_classes, Rng *rng)
{
    Network net;
    net.add(std::make_unique<Dense>(input_pixels, 128, rng));
    net.add(std::make_unique<Relu>(Shape{128, 1, 1}));
    net.add(std::make_unique<Dense>(128, num_classes, rng));
    return net;
}

Network
makePaperCnn(std::size_t image_side, std::size_t num_classes, Rng *rng)
{
    Network net;
    Shape s{1, image_side, image_side};
    auto conv1 = std::make_unique<Conv2d>(s, 32, 5, 2, 2, rng);
    s = conv1->outputShape();
    net.add(std::move(conv1));
    net.add(std::make_unique<Relu>(s));
    auto pool1 = std::make_unique<MaxPool2d>(s, 3, 2);
    s = pool1->outputShape();
    net.add(std::move(pool1));

    auto conv2 = std::make_unique<Conv2d>(s, 64, 5, 2, 2, rng);
    s = conv2->outputShape();
    net.add(std::move(conv2));
    net.add(std::make_unique<Relu>(s));
    auto pool2 = std::make_unique<MaxPool2d>(s, 3, 2);
    s = pool2->outputShape();
    net.add(std::move(pool2));

    net.add(std::make_unique<Dense>(s.size(), 128, rng));
    net.add(std::make_unique<Relu>(Shape{128, 1, 1}));
    net.add(std::make_unique<Dense>(128, num_classes, rng));
    return net;
}

NnTrainer::NnTrainer(Network &net, NnTrainConfig config)
    : net_(net), config_(config), optimizer_(config.lr), rng_(config.seed)
{
    optimizer_.attach(net_.params());
}

Real
NnTrainer::trainEpoch(const ClassDataset &train)
{
    std::vector<std::size_t> order(train.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::shuffle(order.begin(), order.end(), rng_.engine());

    Real total_loss = 0;
    std::size_t in_batch = 0;
    net_.zeroGrad();
    for (std::size_t idx : order) {
        std::vector<Real> logits = net_.forward(train.images[idx].raw());
        LossResult loss = crossEntropyLoss(logits, train.labels[idx]);
        total_loss += loss.value;
        net_.backward(loss.dlogits);
        if (++in_batch == config_.batch) {
            optimizer_.step();
            net_.zeroGrad();
            in_batch = 0;
        }
    }
    if (in_batch > 0) {
        optimizer_.step();
        net_.zeroGrad();
    }
    return total_loss / std::max<std::size_t>(train.size(), 1);
}

Real
NnTrainer::evaluate(const ClassDataset &test)
{
    if (test.size() == 0)
        return 0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i)
        if (net_.predict(test.images[i].raw()) == test.labels[i])
            ++correct;
    return static_cast<Real>(correct) / test.size();
}

Real
NnTrainer::measureFps(const ClassDataset &data, std::size_t samples)
{
    samples = std::min(samples, data.size());
    if (samples == 0)
        return 0;
    WallTimer timer;
    for (std::size_t i = 0; i < samples; ++i)
        net_.predict(data.images[i].raw());
    double elapsed = timer.seconds();
    return elapsed > 0 ? static_cast<Real>(samples) / elapsed : 0;
}

} // namespace nn
} // namespace lightridge
